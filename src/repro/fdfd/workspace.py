"""Simulation workspace: cross-solve caches for the FDFD stack.

The variation-aware inner loop re-solves the same *window* hundreds of
times: every fabrication corner and every Monte-Carlo sample shares the
grid, the frequency and the PML ramp, and only the permittivity diagonal
changes.  The seed implementation rebuilt everything per solve; this
module caches the invariants:

``FdfdAssembly``
    The PML-stretched derivative operators and the precomputed Laplacian
    ``Dxb Dxf + Dyb Dyf`` for one ``(grid, omega, pml)`` key, plus the
    CSC diagonal positions needed to assemble
    ``A = L + diag(omega^2 eps)`` with a single vectorized data update —
    no sparse matmuls, no sparse add, no format conversion per solve.

``SimulationWorkspace``
    Bounded LRU caches for assemblies, slab-mode solves (port
    cross-sections are outside the design region, so their modes are
    constants of an optimization) and LU factorizations keyed by the
    permittivity bytes (corners sharing a permittivity — e.g. the
    worst-corner probe and the nominal corner, or the two directions of
    a reciprocal device — factorize once).

``FactorOptions``
    SuperLU configuration.  The default exploits the near-symmetry of
    the Helmholtz operator (``MMD_AT_PLUS_A`` ordering + symmetric mode
    + relaxed diagonal pivoting), which roughly halves factorization
    time at machine-precision residuals; ``FactorOptions.reference()``
    restores SciPy's COLAMD default.

Solves themselves go through the pluggable backends of
:mod:`repro.fdfd.linalg` (:meth:`SimulationWorkspace.linear_solver`):
``direct``/``batched`` cache one SuperLU per permittivity as before,
while ``krylov`` keeps a small pool of *preconditioner anchors* per
operator set — LUs of recently factorized permittivities, nearest of
which preconditions a BiCGStab/GMRES solve for every other corner.
:meth:`SimulationWorkspace.begin_solver_epoch` (called by the optimizer
once per iteration) drops the anchors so the first permittivity of each
iteration — the nominal corner — becomes the anchor its siblings recycle.
Two opt-in refinements ride the same anchor plumbing:
``SolverConfig.recycle_dim`` keeps a cross-iteration deflation basis per
operator set (harvested solutions from the previous iteration's
converged solves; *kept* across epochs — that is its point — but dropped
by :meth:`clear`, by pickling, and whenever the block path's spread
guard re-anchors away from the basis's neighbourhood), and
``SolverConfig.precond_dtype == "float32"`` gives each anchor a lazy
single-precision LU twin used only for preconditioner sweeps.

Every cache is content-addressed, so a warm workspace returns the same
bits as a cold build for the direct backends — tests assert bit-for-bit
identity of matrices, fields and gradients.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.fdfd.grid import SimGrid
from repro.fdfd.linalg import (
    SOLVER_REGISTRY,
    DirectSolver,
    LinearSolver,
    RecyclePool,
    SinglePrecisionLU,
    SolveStats,
    SolverConfig,
    make_linear_solver,
)
from repro.fdfd.modes import SlabModeSolver, WaveguideMode
from repro.fdfd.operators import build_derivative_ops, laplacian_from_ops
from repro.fdfd.pml import PMLSpec
from repro.obs.trace import span

__all__ = [
    "FactorOptions",
    "FdfdAssembly",
    "SimulationWorkspace",
    "shared_workspace",
    "reset_shared_workspace",
    "default_factor_options",
    "set_default_factor_options",
]


@dataclass(frozen=True)
class FactorOptions:
    """SuperLU factorization configuration.

    Parameters
    ----------
    permc_spec:
        Column permutation strategy.  ``MMD_AT_PLUS_A`` suits the
        nearly-symmetric Helmholtz operator; ``COLAMD`` is SciPy's
        general-purpose default.
    diag_pivot_thresh:
        Partial-pivoting threshold in [0, 1]; small values keep pivots
        on the diagonal, preserving the symmetric ordering's fill-in.
    symmetric_mode:
        Enable SuperLU's symmetric-pattern heuristics.
    """

    permc_spec: str = "MMD_AT_PLUS_A"
    diag_pivot_thresh: float = 0.1
    symmetric_mode: bool = True

    @classmethod
    def reference(cls) -> "FactorOptions":
        """SciPy's default configuration (COLAMD, full partial pivoting)."""
        return cls(
            permc_spec="COLAMD", diag_pivot_thresh=1.0, symmetric_mode=False
        )

    def splu(self, matrix: sp.csc_matrix) -> spla.SuperLU:
        """Factorize a CSC matrix with these options."""
        with span("solver.factorize", "solver", n=matrix.shape[0]):
            return spla.splu(
                matrix,
                permc_spec=self.permc_spec,
                options=dict(
                    SymmetricMode=self.symmetric_mode,
                    DiagPivotThresh=self.diag_pivot_thresh,
                ),
            )


_DEFAULT_FACTOR_OPTIONS = FactorOptions()


def default_factor_options() -> FactorOptions:
    """The process-wide factorization configuration."""
    return _DEFAULT_FACTOR_OPTIONS


def set_default_factor_options(options: FactorOptions) -> FactorOptions:
    """Replace the process-wide default; returns the previous value.

    Used by benchmarks to time the seed-reference configuration
    (``FactorOptions.reference()``) against the tuned default.
    """
    global _DEFAULT_FACTOR_OPTIONS
    previous = _DEFAULT_FACTOR_OPTIONS
    _DEFAULT_FACTOR_OPTIONS = options
    return previous


class FdfdAssembly:
    """Prebuilt operators + Laplacian for one ``(grid, omega, pml)``.

    The precomputed pieces let :meth:`system_matrix` assemble
    ``A = L + diag(omega^2 eps)`` by copying the cached CSC Laplacian and
    adding the diagonal in place — bit-identical to the cold
    ``(L + diags(...)).tocsc()`` path (asserted by the test suite)
    because sparse addition and format conversion commute when the
    diagonal pattern is a subset of ``L``'s.
    """

    def __init__(self, grid: SimGrid, omega: float, pml: PMLSpec):
        self.grid = grid
        self.omega = float(omega)
        self.pml = pml
        self.ops = build_derivative_ops(grid, self.omega, pml)
        self.laplacian = laplacian_from_ops(self.ops)
        self._laplacian_csc = self.laplacian.tocsc()
        self._laplacian_csc.sort_indices()
        self._diag_positions = self._locate_diagonal(self._laplacian_csc)

    @staticmethod
    def _locate_diagonal(mat: sp.csc_matrix) -> np.ndarray | None:
        """Data-array index of entry ``(i, i)`` per column, else ``None``.

        The 3-point Laplacian always stores its main diagonal, but a
        degenerate operator set (e.g. a future masked variant) might
        not; in that case the slow sparse-add path is used instead.
        """
        n = mat.shape[0]
        cols = np.repeat(np.arange(n), np.diff(mat.indptr))
        positions = np.flatnonzero(mat.indices == cols)
        if positions.size != n:
            return None
        return positions

    @property
    def laplacian_csc(self) -> sp.csc_matrix:
        """The cached CSC Laplacian (shared; callers must not mutate it).

        Block-corner solvers apply it to whole right-hand-side blocks
        (``L @ X``) so every corner of an iteration shares one sparse
        mat-mat product per sweep.
        """
        return self._laplacian_csc

    # ------------------------------------------------------------------ #
    def system_matrix(self, eps_r: np.ndarray) -> sp.csc_matrix:
        """``A = L + diag(omega^2 eps_r)`` in CSC format."""
        diag = self.omega**2 * np.asarray(eps_r, dtype=np.float64).ravel()
        if self._diag_positions is None:
            return (
                self.laplacian + sp.diags(diag, format="csr")
            ).tocsc()
        matrix = self._laplacian_csc.copy()
        matrix.data[self._diag_positions] += diag
        return matrix


def _hash_array(arr: np.ndarray) -> bytes:
    digest = hashlib.sha1()
    digest.update(np.ascontiguousarray(arr).view(np.uint8).data)
    return digest.digest()


class _LRUCache:
    """A tiny thread-safe LRU map (inserted-value cache)."""

    def __init__(self, maxsize: int):
        self.maxsize = int(maxsize)
        self._store: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.hits += 1
                return self._store[key]
            self.misses += 1
            return None

    def put(self, key, value):
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0


class _PrecondAnchor:
    """One preconditioner anchor: permittivity + float64 LU (+ f32 twin).

    The float64 LU serves exact solves (anchor corners, cache seeds) and
    float64 preconditioning — those paths are untouched by the
    mixed-precision option and stay bitwise.  Under
    ``precond_dtype=float32`` the anchor keeps its system matrix and
    factorizes a complex64 twin *lazily*, the first time it actually
    preconditions something, so exact-only anchors never pay the second
    factorization; the matrix is released once the twin exists.
    """

    __slots__ = ("eps", "lu", "_matrix", "_lu32")

    def __init__(self, eps: np.ndarray, lu, matrix=None):
        self.eps = eps
        self.lu = lu
        self._matrix = matrix
        self._lu32 = None

    def preconditioner(self, factor_options: FactorOptions, stats: SolveStats):
        if self._matrix is None:
            return self.lu
        if self._lu32 is None:
            # Benign race under thread fan-out: two threads may both
            # factorize the twin; last assignment wins, both are valid.
            self._lu32 = SinglePrecisionLU.factorize(
                self._matrix, factor_options
            )
            stats.add(factorizations=1)
            self._matrix = None
        return self._lu32


class SimulationWorkspace:
    """Shared caches for repeated FDFD solves on the same window.

    Parameters
    ----------
    max_assemblies:
        Distinct ``(grid, omega, pml)`` operator sets to keep.
    max_factorizations:
        LU factorizations retained, keyed by permittivity content.  One
        optimizer iteration revisits a permittivity at most a handful of
        times (worst-probe + nominal corner, fwd/bwd directions), so a
        small bound suffices; factorizations of superseded patterns age
        out on their own.
    max_modes:
        Slab-mode solutions retained, keyed by cross-section content.
    factor_options:
        SuperLU configuration used for every factorization created
        through this workspace.
    solver_config:
        Linear-solver backend selection (a
        :class:`~repro.fdfd.linalg.SolverConfig`, a backend name such as
        ``"krylov"``, or ``None`` for the direct default).

    Notes
    -----
    The workspace deliberately survives pickling as an *empty* shell
    (caches are dropped): LU objects are not picklable, and worker
    processes re-warm their own caches.
    """

    def __init__(
        self,
        max_assemblies: int = 8,
        max_factorizations: int = 8,
        max_modes: int = 64,
        factor_options: FactorOptions | None = None,
        solver_config: SolverConfig | str | None = None,
    ):
        self.factor_options = factor_options or default_factor_options()
        self.solver_config = SolverConfig.coerce(solver_config)
        self.solver_stats = SolveStats()
        self._assemblies = _LRUCache(max_assemblies)
        self._factorizations = _LRUCache(max_factorizations)
        self._modes = _LRUCache(max_modes)
        # Preconditioner anchors for iterative backends: per operator
        # set, a small ordered pool of (eps, LU) pairs; see
        # linear_solver() for the recycling policy.  The operator-set
        # keys themselves are LRU-bounded (by max_assemblies, like the
        # operator cache) so evaluation-only usage — e.g. a wavelength
        # sweep, one omega per point — cannot pin factorizations without
        # limit.
        self._anchors: OrderedDict = OrderedDict()
        # Cross-iteration deflation bases (SolverConfig.recycle_dim):
        # keyed and LRU-bounded like _anchors, but *not* cleared by
        # begin_solver_epoch — surviving epochs is their purpose.
        self._recycle: OrderedDict = OrderedDict()
        self._anchor_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def assembly(
        self, grid: SimGrid, omega: float, pml: PMLSpec | None = None
    ) -> FdfdAssembly:
        """The cached operator set for one window configuration."""
        pml = pml or PMLSpec()
        key = (grid, round(float(omega), 12), pml)
        cached = self._assemblies.get(key)
        if cached is None:
            cached = FdfdAssembly(grid, omega, pml)
            self._assemblies.put(key, cached)
        return cached

    def linear_solver(
        self, assembly: FdfdAssembly, eps_r: np.ndarray
    ) -> LinearSolver:
        """The configured backend's solver for one permittivity.

        Solvers are cached by permittivity content, so corners sharing a
        permittivity (the worst-corner probe and the nominal corner, the
        two directions of a reciprocal device) share one factorization —
        or, for the Krylov backend, one preconditioned operator.

        Krylov anchor policy: the first permittivity factorized for an
        operator set after :meth:`begin_solver_epoch` becomes the
        *anchor* (in the optimizer loop, the nominal corner); every
        subsequent permittivity is solved iteratively, preconditioned by
        its nearest anchor in Euclidean permittivity distance.  A solve
        that falls back to direct factorization contributes its LU as an
        additional anchor, so off-manifold environments (calibration
        runs, far Monte-Carlo samples) pay the factorization once and
        then precondition their own neighbourhood.
        """
        eps = np.asarray(eps_r, dtype=np.float64)
        eps_hash = _hash_array(eps)
        key = (assembly.grid, round(assembly.omega, 12), assembly.pml, eps_hash)
        cached = self._factorizations.get(key)
        if cached is not None:
            if cached.lu is not None and self.solver_uses_preconditioner:
                # A cached LU that survived an epoch reset is still a
                # perfectly good anchor: re-register it so the epoch's
                # sibling corners precondition against it instead of
                # paying a fresh factorization (re-evaluating the same
                # design — FD probing, repeated losses — hits this).
                # Skip when already anchored: repeat hits must not copy
                # the full grid or churn the anchor LRU order.
                akey = (assembly.grid, round(assembly.omega, 12), assembly.pml)
                with self._anchor_lock:
                    registered = eps_hash in self._anchors.get(akey, ())
                if not registered:
                    self._add_anchor(
                        akey, eps_hash, eps.ravel().copy(), cached.lu,
                        matrix=cached.matrix,
                    )
            return cached

        backend = self.solver_config.backend
        matrix = assembly.system_matrix(eps)
        if not getattr(SOLVER_REGISTRY[backend], "uses_preconditioner", False):
            solver = make_linear_solver(
                backend,
                matrix,
                self.factor_options,
                config=self.solver_config,
                stats=self.solver_stats,
            )
        else:
            solver = self._preconditioned_solver(
                assembly, matrix, eps, eps_hash, backend
            )
        self._factorizations.put(key, solver)
        return solver

    def _anchor_pool(self, akey) -> OrderedDict:
        """The (touched) anchor pool for one operator set.

        Caller must hold :attr:`_anchor_lock`.  Centralizes the
        operator-set LRU policy — pools are bounded like the assembly
        cache so evaluation-only usage (one omega per sweep point)
        cannot pin factorizations without limit.
        """
        anchors = self._anchors.setdefault(akey, OrderedDict())
        self._anchors.move_to_end(akey)
        while len(self._anchors) > self._assemblies.maxsize:
            self._anchors.popitem(last=False)
        return anchors

    def _preconditioned_solver(
        self, assembly, matrix, eps, eps_hash, backend
    ) -> LinearSolver:
        akey = (assembly.grid, round(assembly.omega, 12), assembly.pml)
        eps_flat = eps.ravel().copy()
        with self._anchor_lock:
            anchors = self._anchor_pool(akey)
            if eps_hash in anchors:
                # The solver cache evicted this permittivity but its LU
                # survives as an anchor: exact solves, no iteration.
                return DirectSolver(
                    matrix, anchors[eps_hash].lu, self.solver_stats
                )
            if not anchors:
                # First permittivity of the epoch — the nominal corner in
                # the optimizer loop.  Factorize it; siblings recycle it.
                lu = self.factor_options.splu(matrix)
                self.solver_stats.add(factorizations=1)
                anchors[eps_hash] = self._new_anchor(eps_flat, lu, matrix)
                return DirectSolver(matrix, lu, self.solver_stats)
            nearest = min(
                anchors.values(),
                key=lambda a: float(np.linalg.norm(a.eps - eps_flat)),
            )
        return make_linear_solver(
            backend,
            matrix,
            self.factor_options,
            config=self.solver_config,
            stats=self.solver_stats,
            preconditioner=nearest.preconditioner(
                self.factor_options, self.solver_stats
            ),
            on_fallback=lambda direct: self._add_anchor(
                akey, eps_hash, eps_flat, direct.lu, matrix=direct.matrix
            ),
            recycle=self._recycle_pool(akey),
        )

    def _new_anchor(self, eps_flat, lu, matrix=None) -> _PrecondAnchor:
        """An anchor entry, keeping the matrix only if a twin may be cut."""
        if self.solver_config.precond_dtype != "float32":
            matrix = None
        return _PrecondAnchor(eps_flat, lu, matrix)

    def _add_anchor(self, akey, eps_hash, eps_flat, lu, matrix=None) -> None:
        with self._anchor_lock:
            anchors = self._anchor_pool(akey)
            anchors[eps_hash] = self._new_anchor(eps_flat, lu, matrix)
            while len(anchors) > self.solver_config.max_anchors:
                anchors.popitem(last=False)

    def _recycle_pool(self, akey) -> RecyclePool | None:
        """The operator set's deflation pool (LRU-touched), or ``None``.

        Pools deliberately survive :meth:`begin_solver_epoch` —
        cross-iteration reuse is their purpose — but are dropped by
        :meth:`clear`, by pickling, and when the block path's spread
        guard re-anchors the operator set away from the pool's
        neighbourhood (:meth:`_begin_corner_block`).
        """
        dim = self.solver_config.recycle_dim
        if dim <= 0:
            return None
        with self._anchor_lock:
            pool = self._recycle.get(akey)
            if pool is None:
                pool = self._recycle[akey] = RecyclePool(dim)
            self._recycle.move_to_end(akey)
            while len(self._recycle) > self._assemblies.maxsize:
                self._recycle.popitem(last=False)
        return pool

    @property
    def supports_corner_block(self) -> bool:
        """Whether the configured backend can solve corner *blocks*.

        True for ``krylov-block``: :meth:`begin_corner_block` then
        returns a block operator that solves every corner of an
        iteration through shared matrix-RHS sweeps.  Devices and the
        optimizer use this to route the corner fan-out through the
        blocked path instead of per-corner solves.
        """
        backend = SOLVER_REGISTRY[self.solver_config.backend]
        return bool(getattr(backend, "supports_corner_block", False))

    def begin_corner_block(self, assembly: FdfdAssembly, eps_list):
        """Open a corner block: one block operator for a corner family.

        The block analogue of the per-corner :meth:`linear_solver` path,
        sharing its anchor policy: the first permittivity of the epoch
        (``eps_list[0]`` — the nominal corner in the optimizer loop, if
        nothing anchored earlier) is factorized and becomes the anchor;
        the whole block is preconditioned by the anchor nearest to the
        nominal corner.  Systems whose permittivity *is* an existing
        anchor are solved exactly with that LU (like the scalar path's
        ``DirectSolver`` for the anchor corner), and per-column direct
        fallbacks re-anchor through :meth:`_add_anchor` exactly like the
        scalar fallback.

        Returns ``None`` when the configured backend is not
        block-capable — callers then fall back to per-corner solves.
        """
        backend_cls = SOLVER_REGISTRY[self.solver_config.backend]
        if not getattr(backend_cls, "supports_corner_block", False):
            return None
        with span("workspace.begin_corner_block", "solver",
                  corners=len(eps_list)):
            return self._begin_corner_block(backend_cls, assembly, eps_list)

    def _begin_corner_block(self, backend_cls, assembly, eps_list):
        eps_arrs = [np.asarray(e, dtype=np.float64) for e in eps_list]
        if not eps_arrs:
            raise ValueError("begin_corner_block needs at least one corner")
        hashes = [_hash_array(e) for e in eps_arrs]
        akey = (assembly.grid, round(assembly.omega, 12), assembly.pml)
        nominal_flat = eps_arrs[0].ravel()
        with self._anchor_lock:
            anchors = self._anchor_pool(akey)
            seed_nominal = not anchors
            nearest = None
            if anchors:
                nearest = min(
                    anchors.values(),
                    key=lambda a: float(
                        np.linalg.norm(a.eps - nominal_flat)
                    ),
                )
                if hashes[0] not in anchors and len(eps_arrs) > 1:
                    # One preconditioner serves the whole block, so an
                    # off-family anchor (e.g. a calibration environment
                    # factorized earlier in the epoch) would sink every
                    # column at once — the scalar path self-heals via its
                    # first fallback, the block must decide up front.
                    # Yardstick: the corner family's own spread around
                    # the nominal; an anchor within ~2 spreads is
                    # family-grade (the worst-corner probe), anything
                    # farther is worth one nominal factorization.
                    nearest_dist = float(
                        np.linalg.norm(nearest.eps - nominal_flat)
                    )
                    spread = max(
                        float(np.linalg.norm(e.ravel() - nominal_flat))
                        for e in eps_arrs[1:]
                    )
                    # A zero-spread family (degenerate corners) makes any
                    # nonzero-distance anchor off-family by definition.
                    if nearest_dist > 2.0 * spread:
                        seed_nominal = True
                        # The anchor neighbourhood changed: solutions
                        # harvested around the old anchor no longer span
                        # this family's subspace, so drop the recycled
                        # basis along with the anchor choice.
                        self._recycle.pop(akey, None)
            if seed_nominal:
                # Seed from the factorization LRU when it already holds
                # an LU for the nominal permittivity (repeated-theta
                # workloads: FD probing, line searches), and register a
                # fresh factorization back into it — the same recycling
                # contract the scalar path gets from linear_solver().
                fkey = (*akey, hashes[0])
                cached = self._factorizations.get(fkey)
                lu = None if cached is None else cached.lu
                matrix = None if cached is None else cached.matrix
                if lu is None:
                    matrix = assembly.system_matrix(eps_arrs[0])
                    lu = self.factor_options.splu(matrix)
                    self.solver_stats.add(factorizations=1)
                    self._factorizations.put(
                        fkey, DirectSolver(matrix, lu, self.solver_stats)
                    )
                anchors[hashes[0]] = self._new_anchor(
                    nominal_flat.copy(), lu, matrix
                )
                while len(anchors) > self.solver_config.max_anchors:
                    anchors.popitem(last=False)
                nearest = anchors[hashes[0]]
            exact = {
                i: anchors[h].lu for i, h in enumerate(hashes) if h in anchors
            }
        for i, h in enumerate(hashes):
            # Corners whose LU survives in the factorization LRU (e.g.
            # fallbacks of a previous block over the same theta) are
            # solved exactly instead of re-iterated or re-factorized —
            # the block analogue of the scalar path's cache hit.
            if i in exact:
                continue
            cached = self._factorizations.get((*akey, h))
            if cached is not None and cached.lu is not None:
                exact[i] = cached.lu

        def reanchor(system: int, direct) -> None:
            self._add_anchor(
                akey, hashes[system], eps_arrs[system].ravel().copy(),
                direct.lu, matrix=direct.matrix,
            )
            # Mirror the scalar path: the fallback solver joins the
            # factorization LRU so re-solving this permittivity (same
            # theta, next epoch) is a cache hit, not a refactorization.
            self._factorizations.put((*akey, hashes[system]), direct)

        return backend_cls.corner_block(
            assembly,
            eps_arrs,
            preconditioner=nearest.preconditioner(
                self.factor_options, self.solver_stats
            ),
            exact_lus=exact,
            factor_options=self.factor_options,
            config=self.solver_config,
            stats=self.solver_stats,
            on_fallback=reanchor,
            recycle=self._recycle_pool(akey),
        )

    @property
    def solver_uses_preconditioner(self) -> bool:
        """Whether the configured backend recycles anchor factorizations.

        The optimizer uses this to decide if the first corner of an
        iteration must be solved before the executor fan-out (so the
        anchor is established deterministically).
        """
        backend = SOLVER_REGISTRY[self.solver_config.backend]
        return bool(getattr(backend, "uses_preconditioner", False))

    def with_solver_config(
        self, solver_config: SolverConfig | str | None
    ) -> "SimulationWorkspace":
        """A fresh workspace with this one's options but another backend.

        Factorization options and cache bounds carry over; caches start
        cold (solver objects are backend-specific).
        """
        return SimulationWorkspace(
            max_assemblies=self._assemblies.maxsize,
            max_factorizations=self._factorizations.maxsize,
            max_modes=self._modes.maxsize,
            factor_options=self.factor_options,
            solver_config=solver_config,
        )

    def merge_solver_stats(self, counts: dict) -> None:
        """Fold a worker process's solver-stats delta into this workspace.

        The parent half of the process fan-out's stats contract: workers
        snapshot their own (re-warmed, per-worker) workspace around each
        task and ship ``SolveStats.delta_since`` dicts home with the
        results; merging them here makes :meth:`stats` report the whole
        fleet's factorizations, sweeps and fallbacks.  Empty deltas are
        a no-op.
        """
        if counts:
            self.solver_stats.merge(counts)

    def begin_solver_epoch(self) -> None:
        """Drop preconditioner anchors (start of an optimizer iteration).

        The design pattern changes every iteration, so last iteration's
        anchors are stale; clearing them makes the first factorization of
        the new iteration — the nominal corner — the anchor every other
        corner recycles.  A no-op for the direct backends.

        Recycled deflation bases (``SolverConfig.recycle_dim``) are
        deliberately *kept*: an anchor LU is only a good preconditioner
        for the iteration that factorized it, but the harvested
        correction directions — the anchor's systematic errors on the
        corner family — still span the next epoch's error space, which
        is exactly what cross-iteration recycling exploits.
        """
        with self._anchor_lock:
            self._anchors.clear()

    def factorize(
        self, assembly: FdfdAssembly, eps_r: np.ndarray
    ) -> tuple[spla.SuperLU, sp.csc_matrix]:
        """LU + matrix of the system (direct-backend compatibility shim).

        Kept for callers predating :meth:`linear_solver`; requires a
        backend that actually holds an LU.
        """
        solver = self.linear_solver(assembly, eps_r)
        if solver.lu is None:
            raise RuntimeError(
                f"factorize() needs an LU-backed solver; backend "
                f"{self.solver_config.backend!r} returned none"
            )
        return solver.lu, solver.matrix

    def slab_mode(
        self, eps_line: np.ndarray, dl: float, omega: float, order: int
    ) -> WaveguideMode:
        """Cached 1-D eigenmode solve on a cross-section."""
        eps_line = np.asarray(eps_line, dtype=np.float64)
        key = (
            _hash_array(eps_line),
            eps_line.size,
            round(float(dl), 12),
            round(float(omega), 12),
            int(order),
        )
        cached = self._modes.get(key)
        if cached is None:
            cached = SlabModeSolver(eps_line, dl, omega).mode(order)
            self._modes.put(key, cached)
        return cached

    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, dict]:
        """Hit/miss counters and rates per cache (benchmark evidence).

        Each cache reports raw ``hits``/``misses``/``size`` plus
        ``hit_rate_pct`` (0.0 when the cache was never consulted); the
        ``solver`` entry aggregates backend work (factorizations, RHS
        columns, Krylov iterations, fallbacks).
        """
        report: dict[str, dict] = {}
        for name, cache in (
            ("assemblies", self._assemblies),
            ("factorizations", self._factorizations),
            ("modes", self._modes),
        ):
            total = cache.hits + cache.misses
            report[name] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "size": len(cache),
                "hit_rate_pct": round(100.0 * cache.hits / total, 1) if total else 0.0,
            }
        report["solver"] = {
            "backend": self.solver_config.backend,
            **self.solver_stats.as_dict(),
        }
        return report

    def clear(self) -> None:
        self._assemblies.clear()
        self._factorizations.clear()
        self._modes.clear()
        self.solver_stats.reset()
        with self._anchor_lock:
            self._anchors.clear()
            self._recycle.clear()

    # Pickling support: ship an empty workspace (LU objects cannot be
    # pickled; worker processes re-warm their own caches, and recycled
    # deflation bases are dropped so worker payloads stay lean).
    def __getstate__(self):
        return {
            "factor_options": self.factor_options,
            "solver_config": self.solver_config,
            "max_assemblies": self._assemblies.maxsize,
            "max_factorizations": self._factorizations.maxsize,
            "max_modes": self._modes.maxsize,
        }

    def __setstate__(self, state):
        self.__init__(
            max_assemblies=state["max_assemblies"],
            max_factorizations=state["max_factorizations"],
            max_modes=state["max_modes"],
            factor_options=state["factor_options"],
            solver_config=state.get("solver_config"),
        )


_SHARED = SimulationWorkspace()


def shared_workspace() -> SimulationWorkspace:
    """The process-wide default workspace."""
    return _SHARED


def reset_shared_workspace() -> SimulationWorkspace:
    """Drop every shared cache (tests / benchmarks).

    Clears the shared instance *in place* so that every device, problem
    and solver holding a reference to it goes cold too, and returns it.
    """
    _SHARED.clear()
    return _SHARED
