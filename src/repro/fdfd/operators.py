"""Sparse finite-difference derivative operators with PML stretching.

Cells are flattened in C order: flat index ``i = ix * Ny + iy``.  Forward
and backward first differences are staggered half a cell apart so that
``Dxb @ Dxf`` is the standard 3-point second difference; the PML stretch
factors multiply the appropriate staggering of each operator.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.fdfd.grid import SimGrid
from repro.fdfd.pml import PMLSpec, stretch_factors

__all__ = ["first_diff_1d", "build_derivative_ops", "laplacian_from_ops"]


def first_diff_1d(n: int, dl: float, forward: bool) -> sp.csr_matrix:
    """1-D first-difference matrix with Dirichlet (zero) ghost cells.

    ``forward``:  ``(u[i+1] - u[i]) / dl`` evaluated at ``i + 1/2``.
    ``backward``: ``(u[i] - u[i-1]) / dl`` evaluated at ``i``.
    """
    main = np.full(n, -1.0 if forward else 1.0)
    off = np.ones(n - 1)
    if forward:
        mat = sp.diags([main, off], [0, 1], shape=(n, n), format="csr")
    else:
        mat = sp.diags([main, -off], [0, -1], shape=(n, n), format="csr")
    return (mat / dl).tocsr()


def build_derivative_ops(
    grid: SimGrid,
    omega: float,
    pml: PMLSpec | None = None,
) -> dict[str, sp.csr_matrix]:
    """PML-stretched forward/backward difference operators on the grid.

    Returns a dict with keys ``dxf, dxb, dyf, dyb``; each operator maps a
    flattened ``(Nx * Ny,)`` field to its derivative, including the complex
    SC-PML coordinate stretch.
    """
    pml = pml or PMLSpec()
    nx, ny = grid.shape

    sx_int, sx_half = stretch_factors(nx, grid.npml, grid.dl, omega, pml)
    sy_int, sy_half = stretch_factors(ny, grid.npml, grid.dl, omega, pml)

    dxf_1d = first_diff_1d(nx, grid.dl, forward=True)
    dxb_1d = first_diff_1d(nx, grid.dl, forward=False)
    dyf_1d = first_diff_1d(ny, grid.dl, forward=True)
    dyb_1d = first_diff_1d(ny, grid.dl, forward=False)

    # Apply 1/s on the proper staggering, then lift to 2-D by Kronecker
    # products (x varies along the first index in C order).
    sxf_inv = sp.diags(1.0 / sx_half)
    sxb_inv = sp.diags(1.0 / sx_int)
    syf_inv = sp.diags(1.0 / sy_half)
    syb_inv = sp.diags(1.0 / sy_int)

    eye_x = sp.identity(nx, format="csr")
    eye_y = sp.identity(ny, format="csr")

    ops = {
        "dxf": sp.kron(sxf_inv @ dxf_1d, eye_y, format="csr"),
        "dxb": sp.kron(sxb_inv @ dxb_1d, eye_y, format="csr"),
        "dyf": sp.kron(eye_x, syf_inv @ dyf_1d, format="csr"),
        "dyb": sp.kron(eye_x, syb_inv @ dyb_1d, format="csr"),
    }
    return ops


def laplacian_from_ops(ops: dict[str, sp.csr_matrix]) -> sp.csr_matrix:
    """The PML-stretched Laplacian ``Dxb Dxf + Dyb Dyf``.

    The single definition shared by the cold solver path and the cached
    :class:`~repro.fdfd.workspace.FdfdAssembly`, so both produce the
    same bits.
    """
    return ops["dxb"] @ ops["dxf"] + ops["dyb"] @ ops["dyf"]
