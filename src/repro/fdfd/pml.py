"""Stretched-coordinate PML (SC-PML) absorbing boundaries.

The frequency-domain trick: replace each spatial derivative ``d/du`` by
``(1/s_u) d/du`` with a complex stretch ``s_u = 1 - i sigma(u)/omega`` that
is 1 in the interior and ramps polynomially inside the absorbing layer.
Waves entering the layer decay without reflection (to discretization
accuracy).  Formulation follows Shin & Fan, "Choice of the perfectly
matched layer boundary condition for frequency-domain Maxwell's equations
solvers" (JCP 2012) as used by ceviche.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PMLSpec", "stretch_factors", "sigma_profile"]


@dataclass(frozen=True)
class PMLSpec:
    """Parameters of the polynomial conductivity ramp.

    Parameters
    ----------
    order:
        Polynomial grading order ``m``; 3 is the standard compromise
        between discretization error and absorption.
    target_reflection:
        Desired round-trip amplitude reflection of the layer.
    """

    order: int = 3
    target_reflection: float = 1e-8

    def sigma_max(self, thickness_um: float) -> float:
        """Peak conductivity for a layer of physical thickness (um)."""
        if thickness_um <= 0:
            return 0.0
        return (
            -(self.order + 1.0)
            * np.log(self.target_reflection)
            / (2.0 * thickness_um)
        )


def sigma_profile(
    n_cells: int,
    npml: int,
    dl: float,
    spec: PMLSpec,
    half_shift: bool,
) -> np.ndarray:
    """Conductivity sampled along one axis.

    Parameters
    ----------
    n_cells, npml, dl:
        Axis length in cells, PML thickness in cells, pitch in um.
    spec:
        Ramp parameters.
    half_shift:
        If True, sample at half-integer positions (forward-difference
        staggering); otherwise at integer cell centres.
    """
    sigma = np.zeros(n_cells, dtype=np.float64)
    if npml == 0:
        return sigma
    thickness = npml * dl
    s_max = spec.sigma_max(thickness)
    offset = 0.5 if half_shift else 0.0
    positions = np.arange(n_cells) + offset
    # Depth into the left PML, in cells (positive inside the layer).
    left_depth = npml - positions
    right_depth = positions - (n_cells - 1 - npml)
    depth = np.maximum(left_depth, right_depth)
    inside = depth > 0
    sigma[inside] = s_max * (depth[inside] / npml) ** spec.order
    return sigma


def stretch_factors(
    n_cells: int,
    npml: int,
    dl: float,
    omega: float,
    spec: PMLSpec | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Complex stretch factors for one axis.

    Returns
    -------
    (s_int, s_half):
        Stretch evaluated at integer (backward-difference) and half-integer
        (forward-difference) sample points, each of length ``n_cells``.
    """
    spec = spec or PMLSpec()
    sig_int = sigma_profile(n_cells, npml, dl, spec, half_shift=False)
    sig_half = sigma_profile(n_cells, npml, dl, spec, half_shift=True)
    s_int = 1.0 - 1j * sig_int / omega
    s_half = 1.0 - 1j * sig_half / omega
    return s_int, s_half
