"""Cross-iteration Krylov subspace recycling (GCRO-DR-style deflation).

Consecutive optimizer iterations solve corner systems that differ only
by a small diagonal delta (``A_c = L + diag(omega^2 eps_c)`` with the
design moving a gradient step per iteration), so the previous
iteration's converged solutions span almost exactly the subspace the
next iteration's solutions live in.  This module keeps that subspace:

``RecycledSubspace``
    A small orthonormal basis ``U`` of recently harvested *correction*
    vectors — the part of each converged solution the preconditioner
    seed got wrong (FIFO-bounded at ``SolverConfig.recycle_dim``
    columns, near-dependent candidates dropped).  These directions are
    rich in the slow modes of ``M^{-1} A`` that dominate the tail of
    every warm solve.

``DeflationProjector``
    The GCRO-style deflation machinery for one system: with
    ``C = A U`` and ``P`` the orthogonal projector onto ``range(C)``,
    it provides (a) a residual-optimal outer update
    ``x += U argmin||r0 - C y||`` that leaves the residual in the
    complement of the deflated image space, and (b) a *projected
    operator* ``(I - P) A`` for the inner Krylov iteration, whose
    spectrum has the recycled slow modes removed — the iteration
    converges at the rate of the remaining, well-clustered spectrum.
    The inner solution is mapped back through ``x -= U z`` where ``z``
    accumulates the coefficients the projection removed, keeping the
    *true* residual equal to the recurrence residual at all times (so
    convergence tests and harvested corrections stay exact).  Improving
    only the initial guess cannot cut sweeps when the anchor is fresh —
    the seed is already excellent; the win comes from deflating the
    operator's spectrum, which raises the per-sweep contraction rate.

``RecyclePool``
    One :class:`RecycledSubspace` per solve orientation (``"N"`` /
    ``"T"`` — forward and adjoint systems converge in different spaces).
    The workspace keeps one pool per operator set beside its anchor
    pool; bases survive :meth:`begin_solver_epoch` (cross-iteration
    reuse is the point) but are invalidated with the anchor
    neighbourhood and dropped from pickles.

The deflation helpers exploit the shared-Laplacian structure: for a
block of corner systems, ``L @ U`` is computed once and each system's
``C_s`` is that product plus its diagonal times ``U`` — the same
amortization the blocked sweep itself rides.
"""

from __future__ import annotations

import threading

import numpy as np
import scipy.linalg

__all__ = ["RecycledSubspace", "RecyclePool", "DeflationProjector"]

#: Candidate columns whose orthogonal component is below this fraction
#: of their norm are considered already-spanned and dropped.
_DEPENDENCE_RTOL = 1e-8


class RecycledSubspace:
    """An orthonormal, FIFO-bounded basis of harvested solution vectors.

    ``dim`` bounds the column count; :meth:`add_block` orthonormalizes
    incoming solutions against the current basis (modified Gram-Schmidt)
    and evicts the oldest columns when over the bound.  Thread-safe:
    scalar Krylov solvers harvest from executor threads.
    """

    def __init__(self, dim: int):
        if dim < 1:
            raise ValueError(f"recycled-subspace dim must be >= 1, got {dim}")
        self.dim = int(dim)
        self._u: np.ndarray | None = None
        self._uh: np.ndarray | None = None
        self._lock = threading.Lock()
        self.harvested = 0

    @property
    def size(self) -> int:
        u = self._u
        return 0 if u is None else u.shape[1]

    def basis(self) -> np.ndarray | None:
        """The ``(n, m)`` orthonormal basis, or ``None`` when empty.

        Returned array is treated as immutable by callers; harvesting
        replaces it wholesale, so a solver can keep using a snapshot.
        """
        return self._u

    def add_block(self, block: np.ndarray) -> int:
        """Harvest solution columns; returns how many entered the basis."""
        block = np.asarray(block)
        if block.ndim == 1:
            block = block[:, None]
        if block.size == 0:
            return 0
        with self._lock:
            u = self._u
            norms = np.linalg.norm(block, axis=0)
            keep = np.isfinite(norms) & (norms > 0.0)
            if not keep.any():
                return 0
            # Copy: the projection below must not mutate the caller's block.
            w = np.array(block[:, keep], dtype=np.complex128)
            norms = norms[keep]
            if u is not None:
                # Two block-MGS passes against the existing basis: the
                # second absorbs the cancellation error of the first,
                # keeping U orthonormal enough for the Gram-based
                # deflation downstream.
                for _ in range(2):
                    w -= u @ (self._uh @ w)
            # MGS among the survivors themselves (blocks are a handful
            # of columns, so the pairwise loop is cheap).
            cols: list[np.ndarray] = []
            for j in range(w.shape[1]):
                col = w[:, j]
                for _ in range(2):
                    for q in cols:
                        col = col - q * np.vdot(q, col)
                res = np.linalg.norm(col)
                if np.isfinite(res) and res > _DEPENDENCE_RTOL * norms[j]:
                    cols.append(col / res)
            if not cols:
                return 0
            new = np.stack(cols, axis=1)
            u = new if u is None else np.concatenate([u, new], axis=1)
            if u.shape[1] > self.dim:
                # FIFO eviction keeps the newest directions; dropping
                # leading columns of an orthonormal set stays orthonormal.
                u = np.ascontiguousarray(u[:, u.shape[1] - self.dim:])
            self._u = u
            self._uh = np.ascontiguousarray(u.conj().T)
            self.harvested += len(cols)
            return len(cols)

    def clear(self) -> None:
        with self._lock:
            self._u = None
            self._uh = None


class RecyclePool:
    """Per-operator-set recycled bases, one per solve orientation."""

    def __init__(self, dim: int):
        self.dim = int(dim)
        self._bases: dict[str, RecycledSubspace] = {}
        self._lock = threading.Lock()

    def subspace(self, trans: str) -> RecycledSubspace:
        with self._lock:
            base = self._bases.get(trans)
            if base is None:
                base = self._bases[trans] = RecycledSubspace(self.dim)
            return base

    def basis(self, trans: str) -> np.ndarray | None:
        """The orientation's basis without creating an empty subspace."""
        with self._lock:
            base = self._bases.get(trans)
        return None if base is None else base.basis()

    def harvest(self, trans: str, block: np.ndarray) -> int:
        return self.subspace(trans).add_block(block)

    def clear(self) -> None:
        with self._lock:
            self._bases.clear()


class DeflationProjector:
    """GCRO-style deflation for one system, around ``C = A U``.

    The orthogonal projector onto ``range(C)`` is held in normal-equation
    form ``C (C^H C)^{-1} C^H`` — building it costs one thin gemm plus
    an 8x8-ish Cholesky, an order of magnitude cheaper than a Householder
    QR of ``C`` at these shapes, and the per-application cost is the same
    two thin gemms.  Three moves (see the module docstring for the
    algebra):

    * :meth:`deflate` — the residual-optimal (least-squares) outer
      update.  After ``x += dx`` the true residual is the orthogonal
      complement ``(I - P) r`` of the deflated image space.
    * :meth:`project_out` — applied to every operator output during the
      inner iteration, so the Krylov recurrence runs on the *projected*
      operator ``(I - P) A`` whose spectrum has the recycled slow modes
      removed.  The returned coefficients must be accumulated alongside
      the solution updates.
    * :meth:`correction` — maps accumulated coefficients ``z`` back
      into the outer space: subtracting ``U z`` from the inner solution
      restores the identity *true residual == recurrence residual*, so
      the recurrence's convergence test certifies the published
      solution.
    """

    __slots__ = ("u", "c", "ch", "_cho")

    def __init__(self, u: np.ndarray, c: np.ndarray, ch: np.ndarray, cho):
        self.u = u
        self.c = c
        self.ch = ch
        self._cho = cho

    @classmethod
    def build(cls, u: np.ndarray, c: np.ndarray) -> "DeflationProjector | None":
        """Gram-factor ``C = A U``; ``None`` when too ill-conditioned.

        The normal equations square ``C``'s conditioning, so the guard
        is conservative: a failed or near-singular Cholesky means the
        caller simply runs undeflated, which is always correct.  A
        non-finite ``C`` surfaces in the Gram diagonal, so no separate
        scan of the tall matrix is needed.
        """
        # C^H is materialized once: coefficients() runs on every sweep's
        # operator outputs, and `c.conj().T @ w` there would conjugate-
        # copy the tall matrix per call.
        ch = np.ascontiguousarray(c.conj().T)
        with np.errstate(invalid="ignore", over="ignore"):
            gram = ch @ c
        diag = np.abs(np.diagonal(gram))
        if not np.all(np.isfinite(gram)) or diag.min() <= 1e-12 * diag.max():
            return None
        try:
            cho = scipy.linalg.cho_factor(gram, lower=False)
        except scipy.linalg.LinAlgError:
            return None
        return cls(u, c, ch, cho)

    @property
    def dim(self) -> int:
        return self.u.shape[1]

    def solve_gram(self, rhs: np.ndarray) -> np.ndarray:
        """``(C^H C)^{-1} rhs`` for an already-formed ``C^H w`` block."""
        return scipy.linalg.cho_solve(self._cho, rhs, check_finite=False)

    def coefficients(self, w: np.ndarray) -> np.ndarray:
        """``(C^H C)^{-1} C^H w`` — ``w``'s least-squares basis coefficients."""
        return self.solve_gram(self.ch @ w)

    def deflate(self, res: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Residual-optimal outer update: returns ``(dx, r_new)``.

        ``dx = U y`` with ``y = argmin ||res - C y||``, so the update can
        only shrink the residual; ``r_new = res - C y = (I - P) res``.
        """
        y = self.coefficients(res)
        return self.u @ y, res - self.c @ y

    def project_out(self, w: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``((I - P) w, y)`` for an operator output ``w``."""
        y = self.coefficients(w)
        return w - self.c @ y, y

    def correction(self, coeffs: np.ndarray) -> np.ndarray:
        """``U coeffs`` — the outer component the projection removed."""
        return self.u @ coeffs
