"""Pluggable linear-solver subsystem for the FDFD stack.

See :mod:`repro.fdfd.linalg.base` for the interface and registry,
:mod:`repro.fdfd.linalg.direct` for the SuperLU backends,
:mod:`repro.fdfd.linalg.krylov` for the preconditioned iterative
backend, and :mod:`repro.fdfd.linalg.blocked` for the corner-block
variant.  Backend selection is a string key (``direct`` / ``batched`` /
``krylov`` / ``krylov-block``) carried by :class:`SolverConfig` from the
optimizer config and the CLI down to
:class:`repro.fdfd.workspace.SimulationWorkspace`.
"""

from repro.fdfd.linalg.base import (
    DEFAULT_RECYCLE_DIM,
    SOLVER_REGISTRY,
    LinearSolver,
    SolveStats,
    SolverConfig,
    available_backends,
    make_linear_solver,
    register_solver,
)
from repro.fdfd.linalg.blocked import (
    BlockDiagnostics,
    BlockedKrylovSolver,
    CornerBlockSolver,
)
from repro.fdfd.linalg.direct import (
    BatchedDirectSolver,
    DirectSolver,
    SinglePrecisionLU,
)
from repro.fdfd.linalg.krylov import KrylovDiagnostics, PreconditionedKrylovSolver
from repro.fdfd.linalg.recycle import RecyclePool, RecycledSubspace

__all__ = [
    "LinearSolver",
    "SolverConfig",
    "SolveStats",
    "SOLVER_REGISTRY",
    "register_solver",
    "available_backends",
    "make_linear_solver",
    "DEFAULT_RECYCLE_DIM",
    "DirectSolver",
    "BatchedDirectSolver",
    "SinglePrecisionLU",
    "PreconditionedKrylovSolver",
    "KrylovDiagnostics",
    "BlockedKrylovSolver",
    "CornerBlockSolver",
    "BlockDiagnostics",
    "RecyclePool",
    "RecycledSubspace",
]
