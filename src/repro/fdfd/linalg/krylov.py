"""LU-preconditioned Krylov backend with cross-corner factorization reuse.

Fabrication corners differ from the nominal design only inside the
design window (plus a uniform temperature scale), so the nominal
corner's LU is an excellent preconditioner for every other corner of an
iteration: ``M^{-1} A`` clusters near identity and BiCGStab converges in
a handful of sweeps — each costing two matvecs and two triangular
solves, far less than the fresh factorization the direct path pays per
corner.  This is the shift-invert / Woodbury-style factorization reuse
the ROADMAP calls for, in iterative form.

Robustness: the preconditioned solve starts from ``x0 = M^{-1} b``
(exact when the corner *is* the anchor), and a solve that fails to reach
tolerance within the (deliberately small) iteration budget falls back to
a direct factorization — which the workspace then recycles as a new
preconditioner anchor, so an off-manifold permittivity (a calibration
environment, a far Monte-Carlo sample) pays the factorization once and
seeds its own anchor family.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.fdfd.linalg.base import (
    LinearSolver,
    SolveStats,
    SolverConfig,
    register_solver,
)
from repro.fdfd.linalg.direct import BatchedDirectSolver, DirectSolver
from repro.fdfd.linalg.recycle import DeflationProjector, RecyclePool
from repro.obs.trace import span

__all__ = ["PreconditionedKrylovSolver", "KrylovDiagnostics"]


class KrylovDiagnostics:
    """Per-solver convergence record (inspected by tests / benchmarks)."""

    def __init__(self):
        self.solves = 0
        self.iterations = 0
        self.fallbacks = 0

    @property
    def mean_iterations(self) -> float:
        return self.iterations / self.solves if self.solves else 0.0


@register_solver("krylov")
class PreconditionedKrylovSolver(LinearSolver):
    """BiCGStab/GMRES on ``A`` preconditioned by a recycled nearby LU.

    Parameters
    ----------
    matrix:
        The corner's system matrix (CSC).
    preconditioner:
        SuperLU factorization of a *nearby* matrix (the workspace's
        nearest anchor — typically the nominal corner of the current
        iteration).  ``None`` degrades to an unpreconditioned solve,
        which for Helmholtz essentially guarantees the direct fallback;
        the workspace never does this in practice.
    factor_options:
        Configuration for the fallback factorization.
    config:
        Tolerance / iteration budget / method / fallback policy.
    stats:
        Workspace-wide counters.
    on_fallback:
        Called with the fallback :class:`DirectSolver` so the owner can
        recycle its LU as a new preconditioner anchor.
    recycle:
        Cross-iteration deflation pool
        (:class:`~repro.fdfd.linalg.recycle.RecyclePool`) shared through
        the workspace.  When present, the initial residual is deflated
        against the harvested basis and converged solutions are
        harvested back — see :mod:`repro.fdfd.linalg.recycle`.
    """

    #: The workspace supplies a recycled anchor LU at construction.
    uses_preconditioner = True

    def __init__(
        self,
        matrix: sp.csc_matrix,
        preconditioner: spla.SuperLU | None,
        factor_options,
        config: SolverConfig,
        stats: SolveStats | None = None,
        on_fallback: Callable[[DirectSolver], None] | None = None,
        recycle: RecyclePool | None = None,
    ):
        super().__init__(matrix, stats)
        self._precond = preconditioner
        self._factor_options = factor_options
        self.config = config
        self._on_fallback = on_fallback
        self._recycle = recycle if config.recycle_dim > 0 else None
        self._direct: DirectSolver | None = None
        self._ops: dict[str, tuple] = {}
        self.diagnostics = KrylovDiagnostics()

    @classmethod
    def build(
        cls,
        matrix: sp.csc_matrix,
        factor_options,
        config: SolverConfig | None = None,
        stats: SolveStats | None = None,
        preconditioner: spla.SuperLU | None = None,
        on_fallback=None,
        recycle: RecyclePool | None = None,
        **_ignored,
    ) -> "PreconditionedKrylovSolver":
        return cls(
            matrix,
            preconditioner,
            factor_options,
            config or SolverConfig(backend="krylov"),
            stats,
            on_fallback,
            recycle,
        )

    # ------------------------------------------------------------------ #
    def _operators(self, trans: str):
        """(A, M) operator pair for one orientation, built lazily.

        ``A`` stays in its stored layout (``csc.T`` is already a CSR view
        for the transposed system; converting buys nothing at the few
        matvecs a preconditioned solve needs); ``M`` applies the recycled
        LU with matching orientation (``L U = P A Q`` serves ``A^T`` via
        ``trans='T'``).
        """
        cached = self._ops.get(trans)
        if cached is None:
            a = self.matrix if trans == "N" else self.matrix.T
            m = None
            if self._precond is not None:
                lu = self._precond
                n = self.matrix.shape[0]
                m = spla.LinearOperator(
                    (n, n),
                    matvec=lambda x, _t=trans: lu.solve(
                        np.asarray(x, dtype=np.complex128), trans=_t
                    ),
                    dtype=np.complex128,
                )
            cached = (a, m)
            self._ops[trans] = cached
        return cached

    def _ensure_direct(self) -> DirectSolver:
        if self._direct is None:
            # A batched direct solver, so post-fallback multi-RHS blocks
            # go through one SuperLU matrix-RHS sweep (bit-identical to
            # per-column sweeps) instead of k round-trips.
            self._direct = BatchedDirectSolver.build(
                self.matrix, self._factor_options, stats=self.stats
            )
            self.stats.add(fallbacks=1)
            self.diagnostics.fallbacks += 1
            if self._on_fallback is not None:
                self._on_fallback(self._direct)
        return self._direct

    # ------------------------------------------------------------------ #
    def solve(self, rhs: np.ndarray, trans: str = "N") -> np.ndarray:
        self._check_trans(trans)
        b = np.asarray(rhs, dtype=np.complex128)
        if self._direct is not None:
            # A previous solve already fell back; the factorization is
            # paid for, so keep using it.
            return self._direct.solve(b, trans=trans)

        a, m = self._operators(trans)
        # Seed with the anchor's solution M^{-1} b: exact when this
        # matrix *is* the anchor, and for FDFD's structured sources a far
        # better start than zero (physical sources concentrate b on a
        # line; the nominal field is already the right global shape).
        x0 = None if m is None else m.matvec(b)
        seed = x0
        deflation_dim = 0
        proj = None
        basis = None if self._recycle is None else self._recycle.basis(trans)
        if basis is not None and x0 is not None:
            proj = DeflationProjector.build(basis, a @ basis)
        if proj is not None:
            # GCRO-style deflation (see repro.fdfd.linalg.recycle): the
            # outer update makes the residual orthogonal to Q = qr(A U),
            # then the Krylov method runs on the *projected* operator
            # (I - Q Q^H) A — the recycled slow modes are removed from
            # the spectrum — and one extra matvec maps the inner
            # solution back through U R^{-1} so the true residual equals
            # the inner one the solver certified.
            x_outer = x0 + proj.deflate(b - a @ x0)[0]
            b_eff = b - a @ x_outer
            x0_eff = None
            n = b.shape[0]
            a_eff = spla.LinearOperator(
                (n, n),
                matvec=lambda vv: proj.project_out(a @ vv)[0],
                dtype=np.complex128,
            )
            # Certify against tol * ||b||, not tol * ||deflated r0||.
            rtol_eff, atol_eff = 0.0, float(
                self.config.tol * np.linalg.norm(b)
            )
            deflation_dim = proj.dim
            self.stats.add(deflated_columns=1)
        else:
            a_eff, b_eff, x0_eff = a, b, x0
            rtol_eff, atol_eff = self.config.tol, 0.0
        iters = 0

        def count(_arg):
            nonlocal iters
            iters += 1

        with span("solver.krylov", "solver",
                  method=self.config.krylov_method,
                  deflation_dim=deflation_dim) as sp_handle:
            if self.config.krylov_method == "gmres":
                # GMRES counts outer restart cycles; size the cycles so
                # the total inner-iteration budget matches config.maxiter
                # exactly: `full` whole-restart cycles, then one clamped
                # cycle of the remainder (a single ceil-divided outer
                # count would overshoot by up to restart-1 iterations).
                restart = min(self.config.gmres_restart, self.config.maxiter)
                full, rem = divmod(self.config.maxiter, restart)
                x, info = spla.gmres(
                    a_eff,
                    b_eff,
                    x0=x0_eff,
                    rtol=rtol_eff,
                    atol=atol_eff,
                    restart=restart,
                    maxiter=full,
                    M=m,
                    callback=count,
                    callback_type="pr_norm",
                )
                if info != 0 and rem:
                    x, info = spla.gmres(
                        a_eff,
                        b_eff,
                        x0=x,
                        rtol=rtol_eff,
                        atol=atol_eff,
                        restart=rem,
                        maxiter=1,
                        M=m,
                        callback=count,
                        callback_type="pr_norm",
                    )
            else:
                x, info = spla.bicgstab(
                    a_eff,
                    b_eff,
                    x0=x0_eff,
                    rtol=rtol_eff,
                    atol=atol_eff,
                    maxiter=self.config.maxiter,
                    M=m,
                    callback=count,
                )
            sp_handle.set(iterations=iters, converged=info == 0)
        if proj is not None and info == 0:
            # Fold the projected-out component back: the inner solution
            # y solves (I - P) A y = r0', so the outer solution is
            # x_outer + y - U coeffs(A y) — its true residual is exactly
            # the inner residual the solver certified.
            x = x_outer + x - proj.correction(proj.coefficients(a @ x))
        if info == 0:
            self.stats.add(
                solves=1, rhs_columns=1, krylov_solves=1, iterations=iters
            )
            self.diagnostics.solves += 1
            self.diagnostics.iterations += iters
            if self._recycle is not None:
                # Harvest the correction x - M^{-1}b, not the solution:
                # the anchor seed re-supplies the solution subspace each
                # iteration, so the basis should span the directions the
                # preconditioner got wrong (see blocked._harvest_corrections).
                self._recycle.harvest(trans, x if seed is None else x - seed)
            return x
        # The failed attempt is not a completed solve: record only its
        # burnt sweeps, and let the direct fallback count the solve
        # (otherwise one logical solve inflates solves/krylov_solves and
        # skews the mean-iterations evidence in the benchmark report).
        self.stats.add(wasted_iterations=iters)
        if not self.config.fallback:
            raise RuntimeError(
                f"{self.config.krylov_method} did not converge "
                f"(info={info}, iterations={iters}, tol={self.config.tol}) "
                "and fallback is disabled"
            )
        return self._ensure_direct().solve(b, trans=trans)

    def solve_many(self, rhs: np.ndarray, trans: str = "N") -> np.ndarray:
        self._check_trans(trans)
        rhs = np.asarray(rhs, dtype=np.complex128)
        if rhs.ndim != 2:
            raise ValueError(f"solve_many expects an (n, k) block, got {rhs.shape}")
        if self._direct is not None:
            # A previous solve already fell back: the factorization is
            # paid for, so hand the whole block to one SuperLU matrix-RHS
            # sweep instead of paying k per-column round-trips.
            return self._direct.solve_many(rhs, trans=trans)
        out = np.empty_like(rhs)
        for j in range(rhs.shape[1]):
            if self._direct is not None:
                # A column of *this* block fell back: the factorization
                # is paid for, so sweep every remaining column through
                # one SuperLU matrix-RHS call instead of per-column
                # round-trips through solve().
                out[:, j:] = self._direct.solve_many(rhs[:, j:], trans=trans)
                break
            out[:, j] = self.solve(rhs[:, j], trans=trans)
        return out

    @property
    def lu(self):
        """The fallback LU if one was built (there is no LU otherwise)."""
        return None if self._direct is None else self._direct.lu
