"""Block-corner Krylov backend: one blocked BiCGStab across all corners.

Every fabrication corner of an optimizer iteration shares the
PML-stretched Laplacian ``L`` and differs only on the diagonal
``omega^2 eps_c``.  The scalar ``krylov`` backend already recycles the
nominal corner's LU as a preconditioner across those corners, but still
pays its ~3 preconditioner sweeps *per corner, one right-hand side at a
time* — each sweep a separate SciPy call with two per-column triangular
solves and two per-column matvecs.

This module restructures the corner fan-out around a single block
operator, in the spirit of block/recycled Krylov methods for
parameterized systems:

``CornerBlockSolver``
    Holds the shared Laplacian plus one diagonal per corner.  Its
    blocked BiCGStab stacks every corner's residual into an ``(n, k)``
    block, so each sweep applies the recycled anchor LU to the whole
    block in a *single* SuperLU matrix-RHS call and evaluates
    ``A_c x_c`` for all columns through one shared ``L @ X`` sparse
    mat-mat product plus a columnwise diagonal term.  Columns converge
    (and leave the active block) independently; a column that exhausts
    the iteration budget falls back to a direct factorization of *its*
    corner, which re-anchors the workspace exactly like the scalar
    path's fallback.

``BlockedKrylovSolver``
    The registry entry (``"krylov-block"``).  Per-matrix behaviour is
    inherited from :class:`PreconditionedKrylovSolver` (calibration
    runs, worst-corner probes and any taped/threaded per-corner path
    keep working unchanged); its :meth:`corner_block` classmethod is the
    seam :meth:`SimulationWorkspace.begin_corner_block` uses to build
    the block operator for one iteration's corner family.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np
import scipy.sparse.linalg as spla

from repro.fdfd.linalg.base import (
    LinearSolver,
    SolveStats,
    SolverConfig,
    register_solver,
)
from repro.fdfd.linalg.direct import BatchedDirectSolver
from repro.fdfd.linalg.krylov import PreconditionedKrylovSolver
from repro.fdfd.linalg.recycle import DeflationProjector, RecyclePool
from repro.obs.trace import span

__all__ = ["BlockedKrylovSolver", "CornerBlockSolver", "BlockDiagnostics"]


class BlockDiagnostics:
    """Per-block-solver convergence record (inspected by tests/benchmarks)."""

    def __init__(self):
        self.block_solves = 0
        self.sweeps = 0
        self.columns = 0
        self.exact_columns = 0
        self.fallback_columns = 0
        self.column_iterations: list[int] = []

    @property
    def mean_column_iterations(self) -> float:
        if not self.column_iterations:
            return 0.0
        return float(np.mean(self.column_iterations))

    @property
    def sweeps_per_block(self) -> float:
        return self.sweeps / self.block_solves if self.block_solves else 0.0


class CornerBlockSolver:
    """Blocked BiCGStab over one iteration's corner family.

    Parameters
    ----------
    assembly:
        The shared :class:`~repro.fdfd.workspace.FdfdAssembly` — supplies
        the cached CSC Laplacian, the ``omega`` scale and the fallback
        matrix assembly.
    eps_list:
        One permittivity map per corner *system*.  Multiple right-hand
        -side columns may map onto one system (the isolator's fwd/bwd
        directions), see ``systems`` in :meth:`solve_block`.
    preconditioner:
        The recycled anchor LU shared by the whole block (the nominal
        corner's factorization under the optimizer's epoch policy).
    exact_lus:
        ``{system index: SuperLU}`` for systems whose permittivity *is*
        an existing anchor — those columns are solved exactly, matching
        the scalar path where the anchor corner gets a
        :class:`DirectSolver`.
    factor_options / config / stats:
        As for the scalar Krylov backend.
    on_fallback:
        ``on_fallback(system_index, direct_solver)`` — called when a
        column's system had to be factorized directly so the owner can
        recycle the LU as a new preconditioner anchor.
    recycle:
        Cross-iteration deflation pool
        (:class:`~repro.fdfd.linalg.recycle.RecyclePool`): initial
        residuals are deflated against the basis harvested from the
        previous iteration's converged block, and this block's solutions
        are harvested back.  The shared-Laplacian structure makes the
        per-system ``C_s = A_s U`` one ``L @ U`` product plus a diagonal
        term — the same amortization as the blocked sweep itself.
    """

    def __init__(
        self,
        assembly,
        eps_list,
        preconditioner: spla.SuperLU | None,
        exact_lus: Mapping[int, spla.SuperLU] | None,
        factor_options,
        config: SolverConfig,
        stats: SolveStats | None = None,
        on_fallback: Callable[[int, BatchedDirectSolver], None] | None = None,
        recycle: RecyclePool | None = None,
    ):
        if not eps_list:
            raise ValueError("corner block needs at least one system")
        self.assembly = assembly
        self.eps_list = [np.asarray(e, dtype=np.float64) for e in eps_list]
        self.n_systems = len(self.eps_list)
        self._laplacian = assembly.laplacian_csc
        self._laplacian_t = self._laplacian.T  # CSR view, no copy
        # (n, n_systems): the only thing distinguishing the corners.
        self.diags = np.stack(
            [assembly.omega**2 * e.ravel() for e in self.eps_list], axis=1
        )
        self._precond = preconditioner
        self._exact: dict[int, spla.SuperLU] = dict(exact_lus or {})
        # Fallback factorizations are shared between systems carrying
        # byte-identical permittivities (degenerate corner families):
        # `_canonical[i]` is the first system whose diagonal equals
        # system i's, and `_direct` is keyed by canonical index only.
        self._canonical: list[int] = []
        for i in range(self.n_systems):
            for j in range(i):
                if np.array_equal(self.diags[:, i], self.diags[:, j]):
                    self._canonical.append(self._canonical[j])
                    break
            else:
                self._canonical.append(i)
        self._direct: dict[int, BatchedDirectSolver] = {}
        self._factor_options = factor_options
        self.config = config
        self.stats = stats or SolveStats()
        self._on_fallback = on_fallback
        self._recycle = recycle if config.recycle_dim > 0 else None
        # Mixed-precision sweeps: the preconditioner applies in float32
        # (a SinglePrecisionLU twin), so prepend float64-residual
        # iterative refinement before the BiCGStab recurrences.
        self._mixed = (
            config.precond_dtype == "float32" and preconditioner is not None
        )
        self.diagnostics = BlockDiagnostics()

    # ------------------------------------------------------------------ #
    # Block operator / preconditioner applications                       #
    # ------------------------------------------------------------------ #
    def _apply_operator(
        self, block: np.ndarray, diag_cols: np.ndarray, trans: str
    ) -> np.ndarray:
        """``A_c x_c`` for every column: one shared ``L @ X`` + diagonal.

        ``diag_cols`` is the per-column diagonal block (pre-gathered once
        per solve, compacted alongside the iteration state).
        """
        if trans == "T":
            out = self._laplacian_t @ block
        else:
            out = self._laplacian @ block
        out += diag_cols * block
        return out

    def _apply_preconditioner(self, block: np.ndarray, trans: str) -> np.ndarray:
        """Anchor LU over the whole block — a single matrix-RHS sweep."""
        if self._precond is None:
            return block.copy()
        return np.asarray(
            self._precond.solve(np.ascontiguousarray(block), trans=trans)
        )

    def _lu_for_system(self, system: int) -> spla.SuperLU | None:
        canonical = self._canonical[system]
        if canonical in self._direct:
            return self._direct[canonical].lu
        return self._exact.get(system)

    def _fallback_solver(self, system: int) -> BatchedDirectSolver:
        system = self._canonical[system]
        solver = self._direct.get(system)
        if solver is None:
            matrix = self.assembly.system_matrix(self.eps_list[system])
            solver = BatchedDirectSolver.build(
                matrix, self._factor_options, stats=self.stats
            )
            self.stats.add(fallbacks=1)
            self._direct[system] = solver
            if self._on_fallback is not None:
                self._on_fallback(system, solver)
        return solver

    # ------------------------------------------------------------------ #
    # Public entry point                                                 #
    # ------------------------------------------------------------------ #
    def solve_block(
        self,
        rhs: np.ndarray,
        systems: np.ndarray | None = None,
        trans: str = "N",
    ) -> np.ndarray:
        """Solve ``A_{systems[j]} x_j = rhs[:, j]`` for every column.

        Parameters
        ----------
        rhs:
            ``(n, k)`` complex block of right-hand sides.
        systems:
            Column-to-system mapping (default ``arange(k)``, requiring
            one column per system).  Repeated entries are how
            multi-direction devices batch fwd+bwd columns of one corner.
        trans:
            ``"N"`` for ``A x = b``, ``"T"`` for the adjoint systems.
        """
        LinearSolver._check_trans(trans)
        block = np.asarray(rhs, dtype=np.complex128)
        if block.ndim != 2:
            raise ValueError(
                f"solve_block expects an (n, k) block, got {block.shape}"
            )
        k = block.shape[1]
        if systems is None:
            if k != self.n_systems:
                raise ValueError(
                    f"{k} columns for {self.n_systems} systems; pass an "
                    "explicit column-to-system mapping"
                )
            systems = np.arange(k)
        else:
            systems = np.asarray(systems, dtype=np.intp)
            if systems.shape != (k,):
                raise ValueError(
                    f"systems mapping shape {systems.shape} != ({k},)"
                )
            if k and (systems.min() < 0 or systems.max() >= self.n_systems):
                raise ValueError("systems mapping indexes out of range")

        self.stats.add(solves=1, rhs_columns=k, block_solves=1, block_columns=k)
        self.diagnostics.block_solves += 1
        self.diagnostics.columns += k
        out = np.empty_like(block)

        # Columns whose system already owns an exact factorization (an
        # anchor, or an earlier fallback of this block) are solved
        # directly — the scalar path gives the anchor corner a
        # DirectSolver; this is its block equivalent.
        exact_mask = np.array(
            [self._lu_for_system(int(s)) is not None for s in systems]
        )
        for system in np.unique(systems[exact_mask]):
            cols = np.flatnonzero(exact_mask & (systems == system))
            lu = self._lu_for_system(int(system))
            with span("solver.block_exact", "solver", columns=len(cols)):
                out[:, cols] = lu.solve(
                    np.ascontiguousarray(block[:, cols]), trans=trans
                )
            self.diagnostics.exact_columns += len(cols)

        iter_cols = np.flatnonzero(~exact_mask)
        if iter_cols.size == 0:
            return out

        with span("solver.block_sweeps", "solver",
                  columns=int(iter_cols.size)) as sweep_span:
            x, converged, iters, sweeps, deflated, refined = (
                self._bicgstab_block(
                    block[:, iter_cols], systems[iter_cols], trans
                )
            )
            sweep_span.set(
                sweeps=sweeps,
                deflation_dim=0 if self._recycle is None else (
                    self._recycle.subspace(trans).size
                ),
                deflated_columns=deflated,
                refinement_sweeps=refined,
            )
        self.stats.add(
            block_sweeps=sweeps,
            deflated_columns=deflated,
            refinement_sweeps=refined,
        )
        self.stats.record_block_sweeps(sweeps)
        self.diagnostics.sweeps += sweeps
        # Convergence record: converged columns only — a fallback column's
        # burnt budget lands in stats.wasted_iterations, not in the mean.
        self.diagnostics.column_iterations.extend(
            int(i) for i, c in zip(iters, converged) if c
        )
        ok = np.flatnonzero(converged)
        out[:, iter_cols[ok]] = x[:, ok]
        self.stats.add(
            krylov_solves=int(ok.size), iterations=int(iters[ok].sum())
        )

        bad = np.flatnonzero(~converged)
        if bad.size:
            self.stats.add(wasted_iterations=int(iters[bad].sum()))
            if not self.config.fallback:
                raise RuntimeError(
                    f"blocked bicgstab did not converge on {bad.size} of "
                    f"{iter_cols.size} columns within maxiter="
                    f"{self.config.maxiter} (tol={self.config.tol}) and "
                    "fallback is disabled"
                )
            bad_cols = iter_cols[bad]
            for system in np.unique(systems[bad_cols]):
                cols = bad_cols[systems[bad_cols] == system]
                solver = self._fallback_solver(int(system))
                with span("solver.block_fallback", "solver",
                          columns=len(cols)):
                    out[:, cols] = solver.lu.solve(
                        np.ascontiguousarray(block[:, cols]), trans=trans
                    )
                self.diagnostics.fallback_columns += len(cols)
        return out

    def _harvest_corrections(
        self, trans, x_out, seed, converged, zero_rhs
    ) -> None:
        """Feed converged columns' corrections into the recycled basis.

        Harvests ``x - M^{-1} b`` rather than ``x``: the anchor seed
        already supplies the solution subspace every iteration, so the
        cross-iteration information worth keeping is the span of the
        preconditioner's *errors* — which is what the next iteration's
        initial residual must be deflated against.
        """
        if self._recycle is None:
            return
        good = np.flatnonzero(converged & ~zero_rhs)
        if good.size:
            self._recycle.harvest(trans, x_out[:, good] - seed[:, good])

    # ------------------------------------------------------------------ #
    # Blocked BiCGStab with per-column convergence masking               #
    # ------------------------------------------------------------------ #
    def _bicgstab_block(
        self, b: np.ndarray, systems: np.ndarray, trans: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int, int]:
        """Returns ``(x, converged_mask, per_column_iterations, sweeps,
        deflated_columns, refinement_sweeps)``.

        The recurrences are the standard per-column BiCGStab scalars; the
        vector operations run over the whole *active* block, so each
        sweep costs two blocked preconditioner applications and two
        blocked operator applications regardless of how many columns are
        in flight.  The iteration state lives in *compacted* arrays that
        are re-sliced only when a column leaves the active set (converged
        or broken down) — steady-state sweeps touch no fancy indexing, so
        the per-sweep overhead stays proportional to the live columns.
        Breakdown columns (vanishing ``rho``/``denominator``, non-finite
        residuals) are flagged for the per-corner direct fallback.

        Two optional pre-phases run before the recurrences: recycled
        deflation (project the previous iteration's solution subspace
        out of the initial residual — warm columns often converge here,
        paying zero sweeps) and, under ``precond_dtype=float32``,
        float64-residual iterative refinement (one preconditioner + one
        operator application per sweep, half a BiCGStab sweep's cost,
        with a stall guard falling through to the full recurrences).
        """
        n, m = b.shape
        bnorm = np.linalg.norm(b, axis=0)
        thresh_full = self.config.tol * bnorm

        # Seed with the anchor's solution M^{-1} b, like the scalar path.
        x_out = self._apply_preconditioner(b, trans)
        zero_rhs = bnorm == 0.0
        if zero_rhs.any():
            x_out[:, zero_rhs] = 0.0
        r0 = b - self._apply_operator(x_out, self.diags[:, systems], trans)
        # Recycling harvests *corrections* x - M^{-1}b, not solutions:
        # the anchor seed already supplies the solution subspace, so the
        # directions worth keeping across iterations are the ones the
        # preconditioner gets wrong — and those are what the next
        # iteration's deflation must span.
        seed = x_out.copy() if self._recycle is not None else None

        deflated = 0
        q_map: dict[int, DeflationProjector] = {}
        basis = None if self._recycle is None else self._recycle.basis(trans)
        if basis is not None:
            # GCRO-style deflation setup: one shared L @ U serves every
            # system's C_s = A_s U; each system QR-factors its C_s into
            # a DeflationProjector.  The outer update below leaves each
            # column's residual orthogonal to its Q, and the recurrence
            # loop then iterates on the *projected* operator
            # (I - Q Q^H) A — the recycled slow modes are removed from
            # the spectrum, so every sweep contracts at the rate of the
            # remaining well-clustered modes (a better initial guess
            # alone cannot cut sweeps here; see repro.fdfd.linalg.recycle).
            if trans == "T":
                lu_shared = self._laplacian_t @ basis
            else:
                lu_shared = self._laplacian @ basis
            for system in np.unique(systems):
                scols = np.flatnonzero((systems == system) & ~zero_rhs)
                if scols.size == 0:
                    continue
                c = lu_shared + self.diags[:, system][:, None] * basis
                proj = DeflationProjector.build(basis, c)
                if proj is None:
                    continue
                dx, r_new = proj.deflate(r0[:, scols])
                x_out[:, scols] += dx
                r0[:, scols] = r_new
                q_map[int(system)] = proj
                deflated += int(scols.size)

        rnorm0 = np.linalg.norm(r0, axis=0)
        converged = (rnorm0 <= thresh_full) | zero_rhs
        failed = ~np.isfinite(rnorm0)
        iters = np.zeros(m, dtype=np.int64)
        sweeps = 0
        refinement = 0

        def finish():
            self._harvest_corrections(trans, x_out, seed, converged, zero_rhs)
            return x_out, converged, iters, sweeps, deflated, refinement

        # Compacted working set: `cols` maps working position -> input
        # column; all state arrays below share that column order.
        keep = ~(converged | failed)
        cols = np.flatnonzero(keep)
        if cols.size == 0:
            return finish()
        x = x_out[:, cols].copy()
        r = r0[:, cols].copy()
        sys_cols = systems[cols]
        diag_cols = self.diags[:, sys_cols]
        thresh = thresh_full[cols]
        if q_map:
            # Coefficients removed by the projected operator, one column
            # of `z` per working column; `corrected` folds them back so
            # published solutions carry the outer component.
            kdim = basis.shape[1]
            z = np.zeros((kdim, cols.size), dtype=np.complex128)
            # Shared-structure projection pieces: C_s = (L U) + d_s * U
            # with L U shared across systems, so both C_s^H w and C_s y
            # split into one shared gemm plus a diagonal-weighted basis
            # gemm — the per-sweep cost is four minimal-FLOP gemms for
            # the whole block, never a per-system wide product.
            bh = np.ascontiguousarray(basis.conj().T)
            luh = np.ascontiguousarray(lu_shared.conj().T)
            no_proj = ~np.isin(sys_cols, list(q_map))

        def project_block(w, sys_slice, d_slice, np_slice):
            """In-place ``w -= C (C^H C)^{-1} C^H w``, per-column system.

            ``d_slice`` holds each working column's diagonal, so
            ``C_{s(j)}^H w_j = (L U)^H w_j + U^H (conj(d_j) * w_j)``
            assembles for every column at once.  Returns the coefficient
            block ``y`` so the caller can accumulate ``z``.
            """
            t = luh @ w + bh @ (np.conj(d_slice) * w)
            y = np.empty_like(t)
            for system, proj in q_map.items():
                g = sys_slice == system
                if g.any():
                    y[:, g] = proj.solve_gram(t[:, g])
            if np_slice.any():
                # Columns whose system failed to build a projector run
                # undeflated: their removed component is identically zero.
                y[:, np_slice] = 0.0
            w -= lu_shared @ y + d_slice * (basis @ y)
            return y

        def corrected(x_slice, z_slice):
            """Inner solution -> outer solution: ``x - U z``.

            ``U`` is shared by every system (only ``C_s`` differs), so
            one gemm serves the whole slice.
            """
            return x_slice - basis @ z_slice

        if self._mixed:
            # Iterative refinement against the float64 residual: the
            # float32 sweeps' rounding lands in the correction, not the
            # accumulated solution, so the achieved tolerance matches
            # the float64 path.  Each sweep is one preconditioner + one
            # operator application (a BiCGStab sweep pays two of each);
            # a column whose residual stops halving falls through to
            # the full recurrences with its refined state.
            prev = np.linalg.norm(r, axis=0)
            improving = np.ones(cols.size, dtype=bool)
            for _ in range(self.config.maxiter):
                tgt = np.flatnonzero(improving & (prev > thresh))
                if tgt.size == 0:
                    break
                refinement += 1
                dx = self._apply_preconditioner(
                    np.ascontiguousarray(r[:, tgt]), trans
                )
                correction = self._apply_operator(
                    dx, diag_cols[:, tgt], trans
                )
                new = np.linalg.norm(r[:, tgt] - correction, axis=0)
                # Stall guard: apply the sweep only where it shrank the
                # float64 residual; a column that stops halving stops
                # refining (keeping its progress) and falls through to
                # the full recurrences.
                ok = np.isfinite(new) & (new < prev[tgt])
                good = tgt[ok]
                if good.size:
                    x[:, good] += dx[:, ok]
                    r[:, good] -= correction[:, ok]
                improving[tgt] = ok & (new <= 0.5 * prev[tgt])
                prev[good] = new[ok]
            done = prev <= thresh
            if done.any():
                # `z` is still zero here (refinement tracks the true
                # residual directly), so refined columns publish as-is.
                converged[cols[done]] = True
                x_out[:, cols[done]] = x[:, done]
                live = ~done
                cols = cols[live]
                x = x[:, live]
                r = r[:, live]
                sys_cols = sys_cols[live]
                diag_cols = diag_cols[:, live]
                thresh = thresh[live]
                if q_map:
                    z = z[:, live]
                    no_proj = no_proj[live]
                if cols.size == 0:
                    return finish()
            if q_map:
                # Refinement sweeps are not Q-orthogonal; restore the
                # invariant the projected recurrences preserve (residual
                # orthogonal to Q), or the Q-component would stall above
                # tolerance for the rest of the iteration.
                for system, proj in q_map.items():
                    g = np.flatnonzero(sys_cols == system)
                    if g.size:
                        dx, r_new = proj.deflate(r[:, g])
                        x[:, g] += dx
                        r[:, g] = r_new

        r_hat = r.copy()
        p = np.zeros_like(r)
        v = np.zeros_like(r)
        rho_old = np.ones(cols.size, dtype=np.complex128)
        alpha = np.ones(cols.size, dtype=np.complex128)
        omega = np.ones(cols.size, dtype=np.complex128)

        for _ in range(self.config.maxiter):
            sweeps += 1
            iters[cols] += 1

            rho_new = np.einsum("ij,ij->j", np.conj(r_hat), r)
            rho_bad = ~np.isfinite(rho_new) | (np.abs(rho_new) == 0.0)
            # First sweep: p and v are zero, so this reduces to p = r.
            beta = (rho_new / rho_old) * (alpha / omega)
            p = r + beta * (p - omega * v)

            p_hat = self._apply_preconditioner(p, trans)
            v = self._apply_operator(p_hat, diag_cols, trans)
            if q_map:
                qh_v = project_block(v, sys_cols, diag_cols, no_proj)
            denom = np.einsum("ij,ij->j", np.conj(r_hat), v)
            denom_bad = ~np.isfinite(denom) | (np.abs(denom) == 0.0)
            alpha = rho_new / np.where(denom_bad, 1.0, denom)
            s = r - alpha * v
            snorm = np.linalg.norm(s, axis=0)
            s_done = snorm <= thresh

            s_hat = self._apply_preconditioner(s, trans)
            t = self._apply_operator(s_hat, diag_cols, trans)
            if q_map:
                qh_t = project_block(t, sys_cols, diag_cols, no_proj)
            tt = np.einsum("ij,ij->j", np.conj(t), t).real
            tt_bad = tt == 0.0
            omega = np.einsum("ij,ij->j", np.conj(t), s) / np.where(
                tt_bad, 1.0, tt
            )

            x += alpha * p_hat + omega * s_hat
            if q_map:
                z += alpha * qh_v + omega * qh_t
            r = s - omega * t
            rnorm = np.linalg.norm(r, axis=0)
            if s_done.any():
                # ``s`` already met tolerance: take the half step only
                # (the omega update would divide by a vanishing t).
                x[:, s_done] = (
                    x[:, s_done]
                    - omega[s_done] * s_hat[:, s_done]
                )
                if q_map:
                    z[:, s_done] -= omega[s_done] * qh_t[:, s_done]
                r[:, s_done] = s[:, s_done]
                rnorm[s_done] = snorm[s_done]

            bad = rho_bad | ((denom_bad | tt_bad) & ~s_done)
            bad |= ~np.isfinite(rnorm)
            done = (rnorm <= thresh) & ~bad
            rho_old = rho_new

            if done.any() or bad.any():
                # Columns leave the working set: publish their state and
                # compact every live array once.
                converged[cols[done]] = True
                failed[cols[bad]] = True
                if q_map:
                    x_out[:, cols[done]] = corrected(x[:, done], z[:, done])
                else:
                    x_out[:, cols[done]] = x[:, done]
                live = ~(done | bad)
                if not live.any():
                    break
                cols = cols[live]
                x = x[:, live]
                r = r[:, live]
                r_hat = r_hat[:, live]
                p = p[:, live]
                v = v[:, live]
                sys_cols = sys_cols[live]
                diag_cols = diag_cols[:, live]
                thresh = thresh[live]
                rho_old = rho_old[live]
                alpha = alpha[live]
                omega = omega[live]
                if q_map:
                    z = z[:, live]
                    no_proj = no_proj[live]

        # Unconverged stragglers: publish whatever they reached (unused —
        # the caller routes them to the direct fallback).
        still = np.flatnonzero(~(converged | failed))
        if still.size:
            live = np.isin(cols, still)
            if q_map:
                x_out[:, cols[live]] = corrected(x[:, live], z[:, live])
            else:
                x_out[:, cols[live]] = x[:, live]
        return finish()


@register_solver("krylov-block")
class BlockedKrylovSolver(PreconditionedKrylovSolver):
    """Corner-block-capable Krylov backend.

    Per-matrix solves (calibration environments, worst-corner probes,
    any taped/threaded per-corner path) behave exactly like the scalar
    ``krylov`` backend — this class only *adds* the corner-block seam
    that :meth:`SimulationWorkspace.begin_corner_block` drives.  The
    block algorithm is always blocked BiCGStab;
    ``SolverConfig.krylov_method`` still selects the method used by the
    scalar per-matrix fallback path.
    """

    supports_corner_block = True

    @classmethod
    def corner_block(
        cls,
        assembly,
        eps_list,
        preconditioner: spla.SuperLU | None,
        exact_lus: Mapping[int, spla.SuperLU] | None,
        factor_options,
        config: SolverConfig,
        stats: SolveStats | None = None,
        on_fallback=None,
        recycle: RecyclePool | None = None,
    ) -> CornerBlockSolver:
        """Build the block operator for one iteration's corner family."""
        return CornerBlockSolver(
            assembly,
            eps_list,
            preconditioner,
            exact_lus,
            factor_options,
            config,
            stats,
            on_fallback,
            recycle,
        )
