"""Direct (SuperLU) backends: per-column and batched triangular sweeps.

``DirectSolver`` reproduces the PR 1 behaviour exactly: one SuperLU
factorization per permittivity, one triangular sweep per right-hand
side.  ``BatchedDirectSolver`` shares the factorization but hands a
whole ``(n, k)`` block to SuperLU in a single call, amortizing the
per-call overhead and the L/U traversals across the forward,
adjoint-transposed and multi-direction sources that used to arrive one
at a time.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.fdfd.linalg.base import (
    LinearSolver,
    SolveStats,
    SolverConfig,
    register_solver,
)
from repro.obs.trace import span

__all__ = ["DirectSolver", "BatchedDirectSolver", "SinglePrecisionLU"]


class SinglePrecisionLU:
    """A complex64 twin of an anchor LU, for preconditioner sweeps.

    Triangular sweeps are bandwidth-bound, so halving the factor
    precision roughly halves the memory traffic per sweep — the same
    argument that makes the blocked ``L @ X`` win.  The twin is only
    ever used as a *preconditioner*: outer Krylov recurrences and
    residuals stay float64 (inputs are upcast back to complex128 on
    return), so the achieved tolerance is governed by the float64
    residual, not by the float32 factors.  Duck-types the
    ``solve(b, trans=...)`` subset of :class:`scipy...SuperLU` that the
    Krylov backends call.
    """

    dtype = np.complex64

    def __init__(self, lu32: spla.SuperLU):
        self._lu = lu32

    @classmethod
    def factorize(
        cls, matrix: sp.csc_matrix, factor_options
    ) -> "SinglePrecisionLU":
        return cls(factor_options.splu(matrix.astype(np.complex64)))

    def solve(self, rhs: np.ndarray, trans: str = "N") -> np.ndarray:
        out = self._lu.solve(
            np.ascontiguousarray(rhs, dtype=np.complex64), trans=trans
        )
        return np.asarray(out, dtype=np.complex128)


@register_solver("direct")
class DirectSolver(LinearSolver):
    """SuperLU-factorized operator; one sweep per right-hand side.

    The multi-RHS entry point loops columns so that its results are
    bit-identical to a sequence of single solves — the reference the
    batched backend is tested against.
    """

    def __init__(
        self,
        matrix: sp.csc_matrix,
        lu: spla.SuperLU,
        stats: SolveStats | None = None,
    ):
        super().__init__(matrix, stats)
        self._lu = lu

    @classmethod
    def build(
        cls,
        matrix: sp.csc_matrix,
        factor_options,
        config: SolverConfig | None = None,
        stats: SolveStats | None = None,
        **_ignored,
    ) -> "DirectSolver":
        stats = stats or SolveStats()
        lu = factor_options.splu(matrix)
        stats.add(factorizations=1)
        return cls(matrix, lu, stats)

    # ------------------------------------------------------------------ #
    def solve_many(self, rhs: np.ndarray, trans: str = "N") -> np.ndarray:
        self._check_trans(trans)
        rhs = np.asarray(rhs, dtype=np.complex128)
        if rhs.ndim != 2:
            raise ValueError(f"solve_many expects an (n, k) block, got {rhs.shape}")
        out = np.empty_like(rhs)
        with span("solver.solve", "solver", backend="direct",
                  columns=rhs.shape[1]):
            for j in range(rhs.shape[1]):
                out[:, j] = self._lu.solve(rhs[:, j], trans=trans)
        self.stats.add(solves=1, rhs_columns=rhs.shape[1])
        return out

    def solve(self, rhs: np.ndarray, trans: str = "N") -> np.ndarray:
        self._check_trans(trans)
        self.stats.add(solves=1, rhs_columns=1)
        return self._lu.solve(np.asarray(rhs, dtype=np.complex128), trans=trans)

    @property
    def lu(self) -> spla.SuperLU:
        return self._lu


@register_solver("batched")
class BatchedDirectSolver(DirectSolver):
    """Direct backend whose multi-RHS solve is a single SuperLU call.

    SuperLU's ``gstrs`` processes a matrix RHS column by column through
    the same triangular sweeps, so the results match the per-column
    path; only the Python-level and setup overhead is amortized.  The
    class advertises ``batches_rhs`` so upper layers (the devices'
    multi-direction port-power op) aggregate their right-hand sides.
    """

    batches_rhs = True

    def solve_many(self, rhs: np.ndarray, trans: str = "N") -> np.ndarray:
        self._check_trans(trans)
        rhs = np.asarray(rhs, dtype=np.complex128)
        if rhs.ndim != 2:
            raise ValueError(f"solve_many expects an (n, k) block, got {rhs.shape}")
        self.stats.add(solves=1, rhs_columns=rhs.shape[1], batched_calls=1)
        with span("solver.solve", "solver", backend="batched",
                  columns=rhs.shape[1]):
            out = self._lu.solve(rhs, trans=trans)
        return np.ascontiguousarray(out)
