"""Linear-solver protocol, configuration and backend registry.

The FDFD stack reduces every physics question to solves of one sparse
system ``A x = b`` (and its transpose, for adjoints).  This package
isolates *how* those solves happen behind a small interface so that the
workspace, the Helmholtz solver and the devices never mention SuperLU
directly:

``LinearSolver``
    One factorized/preconditioned operator for one system matrix.
    Supports single-RHS, transposed and matrix-RHS (multi-column)
    solves.

``SolverConfig``
    Which backend to use and its knobs (Krylov method, tolerance,
    fallback policy).  Threaded from
    :class:`repro.core.config.OptimizerConfig` and the CLI ``--solver``
    flag down to the workspace.

``SOLVER_REGISTRY``
    String-keyed backend registry (``direct`` / ``batched`` /
    ``krylov``); :func:`register_solver` adds new backends — the seam
    the ROADMAP names for a future GPU (CuPy/cuDSS) backend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.fdfd.workspace import FactorOptions

__all__ = [
    "LinearSolver",
    "SolverConfig",
    "SolveStats",
    "SOLVER_REGISTRY",
    "register_solver",
    "available_backends",
    "make_linear_solver",
    "DEFAULT_RECYCLE_DIM",
]

#: Deflation-basis size selected by the ``:recycle`` config token.  Sized
#: to cover a typical corner family (nominal + fab corners) so one
#: iteration's harvested solutions span the next iteration's block.
DEFAULT_RECYCLE_DIM = 8


@dataclass(frozen=True)
class SolverConfig:
    """Backend selection + iterative-solver knobs.

    Parameters
    ----------
    backend:
        Registry key: ``"direct"`` (one SuperLU per permittivity, the
        PR 1 behaviour), ``"batched"`` (direct, plus matrix-RHS
        triangular sweeps and multi-direction forward/adjoint batching),
        or ``"krylov"`` (BiCGStab/GMRES preconditioned by a recycled
        nominal-corner LU, with automatic fallback to direct).
    krylov_method:
        ``"bicgstab"`` (default) or ``"gmres"``.
    tol:
        Relative residual target of the iterative solve.  The ``1e-5``
        default converges in ~3 BiCGStab sweeps when the preconditioner
        is a nearby LU and leaves optimizer trajectories
        indistinguishable from the direct backend's (the bending FoM
        trace agrees bit for bit over short runs; gradient noise at this
        level is orders of magnitude below fabrication variation).
        Tighten (e.g. ``1e-10``) for finite-difference probing or
        bit-chasing comparisons against the direct backend.
    maxiter:
        Iteration budget before the solve is declared non-converged and
        handed to the direct fallback.  Deliberately small: with a good
        preconditioner convergence takes O(10) iterations, so a solve
        that reaches ``maxiter`` is cheaper to refactorize than to grind
        out.
    fallback:
        Factorize and solve directly when the Krylov solve does not
        converge (the fallback LU also becomes a new preconditioner
        anchor).  Disabling turns non-convergence into a RuntimeError —
        used by convergence tests.
    max_anchors:
        Preconditioner LUs the workspace keeps per operator set
        (nominal corner, calibration environments, ...).  Each solve
        picks the nearest anchor in permittivity distance.
    gmres_restart:
        GMRES restart length (ignored by BiCGStab).
    recycle_dim:
        Size of the cross-iteration deflation basis (``0`` disables
        recycling, the default).  When positive, the workspace keeps up
        to this many orthonormalized solution vectors per operator set
        and orientation (see :mod:`repro.fdfd.linalg.recycle`); Krylov
        solves project them out of the initial residual, so warm
        iterations — whose systems differ from the previous iteration's
        by a small diagonal delta — start a delta away from converged
        instead of cold.  Recycled runs follow the same solver-precision
        determinism contract as the other Krylov knobs: trajectories
        agree with the non-recycled baseline to ``tol``, not bitwise.
    precond_dtype:
        Precision of the preconditioner sweeps: ``"float64"`` (default)
        applies the anchor LU as factorized; ``"float32"`` gives each
        anchor a single-precision (complex64) twin at roughly half the
        memory traffic per triangular sweep — outer Krylov recurrences
        and residuals stay float64, and the blocked path runs iterative
        refinement against the float64 residual first, so the achieved
        tolerance is unchanged (solver-precision contract, like
        ``recycle_dim``).  LU-backed exact paths (``direct`` /
        ``batched``, anchor-exact corners, fallbacks) always solve in
        float64 and stay bitwise.
    """

    backend: str = "direct"
    krylov_method: str = "bicgstab"
    tol: float = 1e-5
    maxiter: int = 12
    fallback: bool = True
    max_anchors: int = 4
    gmres_restart: int = 30
    recycle_dim: int = 0
    precond_dtype: str = "float64"

    def __post_init__(self):
        if self.backend not in SOLVER_REGISTRY:
            raise ValueError(
                f"unknown solver backend {self.backend!r}; "
                f"available: {available_backends()}"
            )
        if self.krylov_method not in ("bicgstab", "gmres"):
            raise ValueError(
                "krylov_method must be 'bicgstab' or 'gmres', "
                f"got {self.krylov_method!r}"
            )
        if self.tol <= 0:
            raise ValueError("tol must be positive")
        if self.maxiter < 1:
            raise ValueError("maxiter must be >= 1")
        if self.max_anchors < 1:
            raise ValueError("max_anchors must be >= 1")
        if self.gmres_restart < 1:
            raise ValueError(
                f"gmres_restart must be >= 1, got {self.gmres_restart} "
                "(the GMRES outer-cycle count divides maxiter by it)"
            )
        if self.recycle_dim < 0:
            raise ValueError(
                f"recycle_dim must be >= 0 (0 disables recycling), "
                f"got {self.recycle_dim}"
            )
        if self.precond_dtype not in ("float64", "float32"):
            raise ValueError(
                "precond_dtype must be 'float64' or 'float32', "
                f"got {self.precond_dtype!r}"
            )

    @classmethod
    def coerce(cls, spec: "SolverConfig | str | None") -> "SolverConfig":
        """Accept a config, a backend name, or ``None`` (-> direct).

        A bare string may carry colon-separated modifiers — the grammar
        the CLI ``--solver`` flag uses: a Krylov method name
        (``"krylov:gmres"``) and/or ``recycle`` to enable the
        cross-iteration deflation basis at its default size
        (``"krylov-block:recycle"``).
        """
        if spec is None:
            return cls()
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            backend, *modifiers = spec.split(":")
            kwargs: dict = {}
            for modifier in modifiers:
                if modifier == "recycle":
                    kwargs["recycle_dim"] = DEFAULT_RECYCLE_DIM
                else:
                    # Anything else is a Krylov method name; unknown
                    # tokens fail through krylov_method validation.
                    kwargs["krylov_method"] = modifier
            return cls(backend=backend, **kwargs)
        raise TypeError(f"cannot coerce {type(spec).__name__} to SolverConfig")

    def with_overrides(self, **kwargs) -> "SolverConfig":
        return replace(self, **kwargs)


class SolveStats:
    """Thread-safe counters describing the work a workspace's solvers did.

    ``iterations`` counts Krylov sweeps only; a direct (or fallback)
    solve contributes to ``factorizations`` and ``solves`` but not to
    ``iterations``.  The ``block_*`` counters describe corner-block
    solves (the ``krylov-block`` backend): ``block_sweeps`` counts
    *blocked* BiCGStab sweeps — each applies the preconditioner and the
    operator to the whole active corner block in single matrix-RHS
    calls, so one block sweep amortizes what the scalar path pays once
    per column — while the per-column convergence work still lands in
    ``krylov_solves`` / ``iterations`` for like-for-like means.
    ``deflated_columns`` counts right-hand sides whose initial residual
    was projected against a recycled deflation basis, and
    ``refinement_sweeps`` counts blocked float64-residual iterative-
    refinement sweeps (the mixed-precision pre-phase) — both zero unless
    ``recycle_dim`` / ``precond_dtype=float32`` are enabled.
    """

    _FIELDS = (
        "factorizations",
        "solves",
        "rhs_columns",
        "batched_calls",
        "krylov_solves",
        "iterations",
        "wasted_iterations",
        "fallbacks",
        "block_solves",
        "block_sweeps",
        "block_columns",
        "deflated_columns",
        "refinement_sweeps",
    )

    def __init__(self):
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)
        # Per-block sweep counts in completion order.  Kept outside
        # ``_FIELDS`` (and therefore out of ``as_dict``/``merge``): it
        # is local evidence for benchmarks and tests — warm-block sweep
        # trajectories — not a mergeable counter.
        self.block_sweep_trace: list[int] = []

    def add(self, **counts: int) -> None:
        with self._lock:
            for name, value in counts.items():
                setattr(self, name, getattr(self, name) + int(value))

    def record_block_sweeps(self, sweeps: int) -> None:
        """Append one corner-block solve's sweep count to the trace."""
        with self._lock:
            self.block_sweep_trace.append(int(sweeps))

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}

    def delta_since(self, baseline: "dict[str, int]") -> dict[str, int]:
        """Counter increments since a previous :meth:`as_dict` snapshot.

        Zero entries are dropped, so the result is a compact payload for
        shipping a worker process's solve work back to the parent (see
        :meth:`merge`).
        """
        now = self.as_dict()
        return {
            name: now[name] - baseline.get(name, 0)
            for name in now
            if now[name] != baseline.get(name, 0)
        }

    def merge(self, counts: "dict[str, int]") -> None:
        """Fold a worker's counter delta into these stats.

        The process fan-out's reduction step: each worker snapshots its
        own workspace stats around a task (:meth:`delta_since`) and the
        parent merges the deltas here, so ``stats()`` reports the whole
        fleet's factorizations / sweeps / fallbacks.  Unknown counter
        names are an error — a silent drop would under-report work.
        """
        unknown = set(counts) - set(self._FIELDS)
        if unknown:
            raise ValueError(
                f"unknown solve-stat counters {sorted(unknown)}; "
                f"have {list(self._FIELDS)}"
            )
        self.add(**counts)

    def reset(self) -> None:
        with self._lock:
            for name in self._FIELDS:
                setattr(self, name, 0)


class LinearSolver:
    """One solvable operator ``A`` (single matrix, many right-hand sides).

    Subclasses implement :meth:`solve_many`; the single-RHS entry points
    are derived.  ``trans`` follows the SuperLU convention: ``"N"`` for
    ``A x = b``, ``"T"`` for ``A^T x = b``.
    """

    #: Whether :meth:`solve_many` amortizes work across columns (upper
    #: layers use this to decide whether aggregating RHS is worthwhile).
    batches_rhs: bool = False

    def __init__(self, matrix: sp.csc_matrix, stats: SolveStats | None = None):
        self.matrix = matrix
        self.stats = stats or SolveStats()

    # ------------------------------------------------------------------ #
    def solve_many(self, rhs: np.ndarray, trans: str = "N") -> np.ndarray:
        """Solve for an ``(n, k)`` block of right-hand sides."""
        raise NotImplementedError

    def solve(self, rhs: np.ndarray, trans: str = "N") -> np.ndarray:
        """Solve for a single flattened right-hand side."""
        rhs = np.asarray(rhs, dtype=np.complex128)
        return self.solve_many(rhs[:, None], trans=trans)[:, 0]

    # ------------------------------------------------------------------ #
    @property
    def lu(self):
        """The underlying SuperLU factorization, if the backend has one."""
        return None

    @staticmethod
    def _check_trans(trans: str) -> None:
        if trans not in ("N", "T"):
            raise ValueError(f"trans must be 'N' or 'T', got {trans!r}")


SOLVER_REGISTRY: dict[str, type] = {}


def register_solver(name: str):
    """Class decorator adding a backend to :data:`SOLVER_REGISTRY`."""

    def decorate(cls):
        if name in SOLVER_REGISTRY and SOLVER_REGISTRY[name] is not cls:
            raise ValueError(f"solver backend {name!r} already registered")
        SOLVER_REGISTRY[name] = cls
        cls.backend_name = name
        return cls

    return decorate


def available_backends() -> list[str]:
    return sorted(SOLVER_REGISTRY)


def make_linear_solver(
    backend: str,
    matrix: sp.csc_matrix,
    factor_options: "FactorOptions",
    *,
    config: SolverConfig | None = None,
    stats: SolveStats | None = None,
    **kwargs,
) -> LinearSolver:
    """Instantiate a registered backend for one system matrix.

    Direct backends factorize immediately; the Krylov backend expects a
    ``preconditioner`` LU in ``kwargs`` (the workspace supplies its
    nearest anchor) and factorizes nothing up front.
    """
    try:
        cls = SOLVER_REGISTRY[backend]
    except KeyError:
        raise ValueError(
            f"unknown solver backend {backend!r}; "
            f"available: {available_backends()}"
        ) from None
    return cls.build(
        matrix,
        factor_options,
        config=config or SolverConfig(backend=backend),
        stats=stats,
        **kwargs,
    )
