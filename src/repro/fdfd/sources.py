"""Current sources for FDFD simulations."""

from __future__ import annotations

import numpy as np

from repro.fdfd.grid import SimGrid
from repro.fdfd.modes import WaveguideMode

__all__ = ["ModeLineSource", "point_source"]


class ModeLineSource:
    """A line of ``Jz`` current shaped like a waveguide mode profile.

    Placed on one grid line (a column for x-propagating ports, a row for
    y-propagating ports), it launches the mode symmetrically in both
    directions; transmission figures normalize this out with a calibration
    run, the standard practice of the ceviche ecosystem the paper builds on.

    Parameters
    ----------
    grid:
        Simulation grid.
    axis:
        ``"x"`` for a source plane normal to x (a column), ``"y"`` for a
        row.
    plane_index:
        Column (or row) index of the source plane.
    span:
        Slice of transverse cells covered by the mode profile.
    mode:
        The mode whose profile shapes the current.
    """

    def __init__(
        self,
        grid: SimGrid,
        axis: str,
        plane_index: int,
        span: slice,
        mode: WaveguideMode,
    ):
        if axis not in ("x", "y"):
            raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")
        n_span = len(range(*span.indices(grid.ny if axis == "x" else grid.nx)))
        if n_span != mode.profile.size:
            raise ValueError(
                f"span covers {n_span} cells but mode profile has "
                f"{mode.profile.size} samples"
            )
        self.grid = grid
        self.axis = axis
        self.plane_index = int(plane_index)
        self.span = span
        self.mode = mode

    def current(self, amplitude: complex = 1.0) -> np.ndarray:
        """Complex ``Jz`` array of shape ``grid.shape``."""
        jz = np.zeros(self.grid.shape, dtype=np.complex128)
        if self.axis == "x":
            jz[self.plane_index, self.span] = amplitude * self.mode.profile
        else:
            jz[self.span, self.plane_index] = amplitude * self.mode.profile
        return jz


def point_source(grid: SimGrid, ix: int, iy: int, amplitude: complex = 1.0) -> np.ndarray:
    """A single-cell ``Jz`` source — handy for tests (cylindrical wave)."""
    jz = np.zeros(grid.shape, dtype=np.complex128)
    jz[ix, iy] = amplitude
    return jz
