"""Uniform 2-D simulation grid.

Axis convention: index ``[ix, iy]`` with ``x`` the nominal propagation axis
(horizontal, increasing to the "east") and ``y`` transverse (increasing to
the "north").  All coordinates are cell-centred and in micrometres.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimGrid"]


@dataclass(frozen=True)
class SimGrid:
    """Geometry of the FDFD computational window.

    Parameters
    ----------
    shape:
        ``(Nx, Ny)`` number of cells along x and y.
    dl:
        Cell pitch in micrometres (same in both directions).
    npml:
        PML thickness in cells, applied on all four sides.
    """

    shape: tuple[int, int]
    dl: float
    npml: int = 10

    def __post_init__(self):
        nx, ny = self.shape
        if nx <= 0 or ny <= 0:
            raise ValueError(f"grid shape must be positive, got {self.shape}")
        if self.dl <= 0:
            raise ValueError(f"dl must be positive, got {self.dl}")
        if self.npml < 0:
            raise ValueError(f"npml must be >= 0, got {self.npml}")
        if 2 * self.npml >= min(nx, ny):
            raise ValueError(
                f"PML ({self.npml} cells per side) swallows the whole "
                f"{self.shape} grid"
            )

    # ------------------------------------------------------------------ #
    @property
    def nx(self) -> int:
        return self.shape[0]

    @property
    def ny(self) -> int:
        return self.shape[1]

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny

    @property
    def extent_um(self) -> tuple[float, float]:
        """Physical size ``(Lx, Ly)`` of the window in um."""
        return (self.nx * self.dl, self.ny * self.dl)

    # ------------------------------------------------------------------ #
    def x_coords(self) -> np.ndarray:
        """Cell-centre x coordinates (um), origin at the window corner."""
        return (np.arange(self.nx) + 0.5) * self.dl

    def y_coords(self) -> np.ndarray:
        """Cell-centre y coordinates (um)."""
        return (np.arange(self.ny) + 0.5) * self.dl

    def meshgrid(self) -> tuple[np.ndarray, np.ndarray]:
        """``(X, Y)`` coordinate arrays of shape ``(Nx, Ny)``."""
        return np.meshgrid(self.x_coords(), self.y_coords(), indexing="ij")

    def index_of_x(self, x_um: float) -> int:
        """Column index whose centre is closest to ``x_um`` (clamped)."""
        idx = int(round(x_um / self.dl - 0.5))
        return int(np.clip(idx, 0, self.nx - 1))

    def index_of_y(self, y_um: float) -> int:
        """Row index whose centre is closest to ``y_um`` (clamped)."""
        idx = int(round(y_um / self.dl - 0.5))
        return int(np.clip(idx, 0, self.ny - 1))

    def slice_of_x_range(self, x_lo_um: float, x_hi_um: float) -> slice:
        """Half-open column slice covering ``[x_lo_um, x_hi_um)``."""
        if x_hi_um <= x_lo_um:
            raise ValueError("empty x range")
        lo = self.index_of_x(x_lo_um)
        hi = self.index_of_x(x_hi_um - 0.5 * self.dl) + 1
        return slice(lo, hi)

    def slice_of_y_range(self, y_lo_um: float, y_hi_um: float) -> slice:
        """Half-open row slice covering ``[y_lo_um, y_hi_um)``."""
        if y_hi_um <= y_lo_um:
            raise ValueError("empty y range")
        lo = self.index_of_y(y_lo_um)
        hi = self.index_of_y(y_hi_um - 0.5 * self.dl) + 1
        return slice(lo, hi)

    def interior_mask(self) -> np.ndarray:
        """Boolean mask of cells outside the PML."""
        mask = np.zeros(self.shape, dtype=bool)
        p = self.npml
        mask[p : self.nx - p, p : self.ny - p] = True
        return mask
