"""Field monitors: modal overlap amplitudes and Poynting flux.

Mode-overlap monitors are *linear* functionals of the field, which is what
makes the multi-monitor adjoint of :mod:`repro.fdfd.adjoint` a single extra
solve.  Poynting-flux monitors (quadratic) are provided for validation and
energy-conservation tests.
"""

from __future__ import annotations

import numpy as np

from repro.fdfd.grid import SimGrid
from repro.fdfd.modes import WaveguideMode
from repro.fdfd.solver import FdfdFields

__all__ = ["ModeOverlapMonitor", "poynting_flux_x", "poynting_flux_y"]


class ModeOverlapMonitor:
    """Projects the field on one guided mode at one plane.

    With the mode normalization ``sum(phi^2) dl = 1`` the complex overlap

        a = sum_y phi(y) Ez(plane, y) * dl

    is the modal amplitude and the carried power is
    ``|a|^2 beta / (2 omega)``.

    Parameters
    ----------
    grid, axis, plane_index, span:
        Same geometry conventions as :class:`~repro.fdfd.sources.ModeLineSource`.
    mode:
        The mode to project on.
    """

    def __init__(
        self,
        grid: SimGrid,
        axis: str,
        plane_index: int,
        span: slice,
        mode: WaveguideMode,
    ):
        if axis not in ("x", "y"):
            raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")
        self.grid = grid
        self.axis = axis
        self.plane_index = int(plane_index)
        self.span = span
        self.mode = mode
        self._weight: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def weight_vector(self) -> np.ndarray:
        """The (real) functional ``w`` with ``a = w . ez_flat``.

        Computed once per monitor and reused by every amplitude and
        adjoint evaluation (do not mutate the returned array).
        """
        if self._weight is None:
            w = np.zeros(self.grid.shape, dtype=np.float64)
            if self.axis == "x":
                w[self.plane_index, self.span] = self.mode.profile * self.grid.dl
            else:
                w[self.span, self.plane_index] = self.mode.profile * self.grid.dl
            self._weight = w.ravel()
        return self._weight

    def amplitude(self, ez: np.ndarray) -> complex:
        """Modal amplitude of a field array (full grid, complex)."""
        return complex(np.dot(self.weight_vector(), np.asarray(ez).ravel()))

    def power(self, ez: np.ndarray) -> float:
        """Power carried in this mode at this plane."""
        return self.mode.power_of_amplitude(self.amplitude(ez))

    @property
    def power_factor(self) -> float:
        """``gamma`` with ``P = gamma |a|^2``."""
        return self.mode.beta / (2.0 * self.mode.omega)


def poynting_flux_x(fields: FdfdFields, ix: int, span: slice, dl: float) -> float:
    """Time-averaged power flowing in +x through part of column ``ix``.

    ``S_x = -1/2 Re(Ez Hy*)`` integrated over the span.
    """
    ez = fields.ez[ix, span]
    hy = fields.hy[ix, span]
    return float(np.sum(-0.5 * np.real(ez * np.conj(hy))) * dl)


def poynting_flux_y(fields: FdfdFields, iy: int, span: slice, dl: float) -> float:
    """Time-averaged power flowing in +y through part of row ``iy``.

    ``S_y = 1/2 Re(Ez Hx*)`` integrated over the span.
    """
    ez = fields.ez[span, iy]
    hx = fields.hx[span, iy]
    return float(np.sum(0.5 * np.real(ez * np.conj(hx))) * dl)
