"""Assembly and solution of the 2-D Helmholtz system.

The discretized operator is

    A = Dxb Dxf + Dyb Dyf + omega^2 diag(eps_r)

(with the PML stretch folded into the difference operators), and the source
vector for a current sheet ``Jz`` is ``b = -i omega Jz``.  One LU
factorization serves both the forward solve and the transposed (adjoint)
solve, which is the key runtime trick of adjoint inverse design.

Repeated solves on the same window go through a
:class:`~repro.fdfd.workspace.SimulationWorkspace` (the process-shared
one by default): the derivative operators and Laplacian are built once
per ``(grid, omega, pml)``, each corner's system matrix is assembled by
a single diagonal update, and identical permittivities share one LU.
Pass ``workspace=None`` to force the cold, cache-free path (it produces
bit-identical matrices and fields — the caches are content-addressed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.fdfd.grid import SimGrid
from repro.fdfd.linalg import DirectSolver, SolveStats
from repro.fdfd.operators import build_derivative_ops, laplacian_from_ops
from repro.fdfd.pml import PMLSpec
from repro.fdfd.workspace import (
    FactorOptions,
    SimulationWorkspace,
    default_factor_options,
    shared_workspace,
)

__all__ = ["HelmholtzSolver", "FdfdFields", "derive_h_fields"]


def derive_h_fields(dxf, dyf, omega: float, ez):
    """``(Hx, Hy)`` from ``Ez`` under the engineering time convention.

    The single source of the SC-PML sign convention: with the stretch
    ``s = 1 - i sigma / omega`` absorbing outgoing waves under
    ``e^{+i omega t}``, the curl relations give
    ``Hx = -d_y Ez / (i omega mu)`` and ``Hy = +d_x Ez / (i omega mu)``
    in natural units.  ``ez`` may be a flat vector or an ``(n, k)``
    block — sparse mat-vec and mat-mat both apply, so blocked solvers
    derive all columns' H fields in two products.
    """
    hx = -(dyf @ ez) / (1j * omega)
    hy = (dxf @ ez) / (1j * omega)
    return hx, hy


@dataclass
class FdfdFields:
    """Field solution bundle on the simulation grid.

    Attributes
    ----------
    ez:
        Out-of-plane electric field, shape ``(Nx, Ny)`` complex.
    hx, hy:
        In-plane magnetic fields derived from ``ez`` (same shape).
    """

    ez: np.ndarray
    hx: np.ndarray
    hy: np.ndarray


class HelmholtzSolver:
    """Factorized FDFD operator for one permittivity map.

    Parameters
    ----------
    grid:
        Simulation window geometry.
    eps_r:
        Relative permittivity, shape ``grid.shape``, real (lossless).
    omega:
        Angular frequency in natural units (``2 pi / lambda_um``).
    pml:
        PML ramp specification.
    workspace:
        Cache provider.  ``"shared"`` (default) uses the process-wide
        :func:`~repro.fdfd.workspace.shared_workspace`; pass a private
        :class:`~repro.fdfd.workspace.SimulationWorkspace` for isolated
        caching, or ``None`` to rebuild everything per solver (the seed
        behaviour, used by cold-path benchmarks and identity tests).
    factor_options:
        SuperLU configuration for the *cold* path; a workspace applies
        its own ``factor_options`` so that cached factorizations are
        consistent.

    Notes
    -----
    Factorization cost dominates (~O(N^1.5) for 2-D grids with a good
    ordering); subsequent solves are cheap triangular sweeps.  The adjoint
    engine exploits ``solve_transposed`` so a gradient costs one extra
    sweep, not one extra factorization.
    """

    def __init__(
        self,
        grid: SimGrid,
        eps_r: np.ndarray,
        omega: float,
        pml: PMLSpec | None = None,
        workspace: SimulationWorkspace | None | str = "shared",
        factor_options: FactorOptions | None = None,
    ):
        eps_r = np.asarray(eps_r, dtype=np.float64)
        if eps_r.shape != grid.shape:
            raise ValueError(
                f"eps_r shape {eps_r.shape} does not match grid {grid.shape}"
            )
        if omega <= 0:
            raise ValueError(f"omega must be positive, got {omega}")
        self.grid = grid
        self.omega = float(omega)
        self.eps_r = eps_r
        if workspace == "shared":
            workspace = shared_workspace()

        if workspace is not None:
            assembly = workspace.assembly(grid, self.omega, pml)
            self._dxf = assembly.ops["dxf"]
            self._dyf = assembly.ops["dyf"]
            self.linsolver = workspace.linear_solver(assembly, eps_r)
            self.system_matrix = self.linsolver.matrix
        else:
            ops = build_derivative_ops(grid, self.omega, pml)
            laplacian = laplacian_from_ops(ops)
            self._dxf = ops["dxf"]
            self._dyf = ops["dyf"]
            self.system_matrix = (
                laplacian
                + sp.diags(self.omega**2 * eps_r.ravel(), format="csr")
            ).tocsc()
            options = factor_options or default_factor_options()
            self.linsolver = DirectSolver(
                self.system_matrix, options.splu(self.system_matrix), SolveStats()
            )

    @property
    def _lu(self):
        """Underlying SuperLU factors (LU-backed backends only)."""
        return self.linsolver.lu

    # ------------------------------------------------------------------ #
    def solve(self, source_jz: np.ndarray) -> FdfdFields:
        """Solve for the fields of a current distribution ``Jz``.

        Parameters
        ----------
        source_jz:
            Complex current sheet, shape ``grid.shape``.

        Returns
        -------
        FdfdFields
            ``ez`` plus derived ``hx = d_y ez / (i omega)`` and
            ``hy = -d_x ez / (i omega)``.
        """
        source_jz = np.asarray(source_jz)
        if source_jz.shape != self.grid.shape:
            raise ValueError(
                f"source shape {source_jz.shape} != grid {self.grid.shape}"
            )
        b = (-1j * self.omega) * source_jz.ravel().astype(np.complex128)
        ez_flat = self.linsolver.solve(b)
        return self.fields_from_ez(ez_flat)

    def fields_from_ez(self, ez_flat: np.ndarray) -> FdfdFields:
        """Derive the field bundle from a flattened ``Ez`` solution.

        Split out of :meth:`solve` so that multi-RHS (batched) solves can
        reconstruct per-column field bundles.
        """
        ez = ez_flat.reshape(self.grid.shape)
        hx, hy = derive_h_fields(self._dxf, self._dyf, self.omega, ez_flat)
        return FdfdFields(
            ez=ez,
            hx=hx.reshape(self.grid.shape),
            hy=hy.reshape(self.grid.shape),
        )

    def solve_raw(self, rhs_flat: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` for an arbitrary flattened right-hand side."""
        return self.linsolver.solve(np.asarray(rhs_flat, dtype=np.complex128))

    def solve_many(self, rhs_block: np.ndarray, trans: str = "N") -> np.ndarray:
        """Solve for an ``(n, k)`` block of right-hand sides at once.

        With the ``batched`` backend this is a single matrix-RHS
        triangular sweep; other backends process columns individually.
        """
        return self.linsolver.solve_many(
            np.asarray(rhs_block, dtype=np.complex128), trans=trans
        )

    def solve_transposed(self, rhs_flat: np.ndarray) -> np.ndarray:
        """Solve ``A^T x = rhs`` — the adjoint system.

        LU-backed backends reuse the forward factors (``L U = P A Q``
        implies ``A^T = Q U^T L^T P``); the Krylov backend iterates on
        ``A^T`` preconditioned by the transposed anchor LU.  Either way,
        no second factorization is needed.
        """
        return self.linsolver.solve(
            np.asarray(rhs_flat, dtype=np.complex128), trans="T"
        )
