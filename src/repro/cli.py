"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``design``    — run the BOSON-1 optimizer on a benchmark device.
``evaluate``  — Monte-Carlo post-fab evaluation of a saved design.
``baseline``  — run one named prior-art method end-to-end.
``worker``    — serve this host's cores to remote corner fan-outs.
``trace``     — inspect trace files written by ``--trace-dir`` runs.
``info``      — print device/benchmark inventory.

Every command accepts ``--help``.  Results are saved as JSON (patterns
included) so they can be re-evaluated or rendered later.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import __version__
from repro.baselines import BASELINE_REGISTRY, run_baseline
from repro.core import Boson1Optimizer, OptimizerConfig
from repro.core.remote import DEFAULT_CONNECT_RETRIES, DEFAULT_REMOTE_TIMEOUT
from repro.core.sampling import SAMPLING_STRATEGIES
from repro.devices import DEVICE_REGISTRY, make_device
from repro.eval import evaluate_ideal, evaluate_post_fab
from repro.eval.montecarlo import DEFAULT_BLOCK_CHUNK
from repro.fab.process import FabricationProcess
from repro.utils.io import load_result, save_result
from repro.utils.logsetup import LOG_LEVELS, configure_logging
from repro.utils.render import ascii_pattern

__all__ = ["main", "build_parser"]


_CHOOSING_HELP = """\
choosing an executor / solver
-----------------------------
executors (corner / sample fan-out):
  serial       default; lowest overhead, fully deterministic.
  thread[:n]   shared-memory threads (the hot paths release the GIL);
               bit-identical to serial for LU-backed solvers
               (direct/batched), solver precision for preconditioned
               ones (fallback anchors arrive in scheduling order).
               Best on 1 machine, few cores.
  process[:n]  forked workers; `design` ships pickle-clean forward-solve
               payloads and reassembles gradients in the parent, so
               results match serial to solver precision.  Best when
               cores are plentiful and corner counts are large.
  remote:ADDRS the same payloads shipped over TCP to worker hosts
               (ADDRS = host:port[,host:port...]); see "scaling out".
without an explicit :n, process and remote auto-tune to
min(corner count, available workers); on a 1-core box an auto process
spec runs inline, making `--executor process` safe everywhere.
solvers (every FDFD solve):
  direct       one SuperLU per corner; the bitwise reference.
  batched      direct + matrix-RHS sweeps; multi-direction devices
               batch forward and adjoint systems (bitwise on
               single-direction devices).
  krylov       nominal-corner LU recycled across an iteration's corners
               via preconditioned BiCGStab/GMRES; fastest per corner,
               accurate to the solver tolerance.
  krylov-block krylov + one *blocked* solve for the whole corner family
               (serial executor only; other executors fall back to
               scalar krylov per corner).  Fastest overall on 1 core.
krylov extras (modifiers compose, e.g. krylov-block:recycle):
  :recycle     cross-iteration subspace recycling: converged solves
               donate their correction directions to a small deflation
               basis (GCRO-style), and later solves on nearby systems
               project those slow modes out of the operator — warm
               Monte-Carlo sweeps and long optimizations converge in
               strictly fewer blocked sweeps.  Worth it on large grids
               (the dense deflation work competes with sparse LU solves
               on small ones).
  --precond-dtype float32
               factor the preconditioner anchor in single precision
               (half the factorization memory/time); outer recurrences
               stay float64 and iterative refinement re-certifies every
               corner to the full solver tolerance.
determinism contract: direct/batched are bitwise stable across
executors; krylov variants (including :recycle and float32
preconditioning) agree with them to the solver tolerance — trajectories
match to ~1e-8, not bit-for-bit.
rule of thumb: start with `--solver krylov-block`; add `:recycle` for
Monte-Carlo evaluation or many-iteration runs on fine grids; add
`--executor process:n` on multi-core machines or `--executor thread:n`
for a shared-memory fan-out; use `--solver direct` when chasing bits.

robust scenario families (broadband x thermal x fab)
----------------------------------------------------
axes: `repro design bending --wavelengths 1.53,1.55,1.57
--temperatures 290,310` crosses every sampled fabrication corner with
each operating wavelength and temperature (comma-separated floats;
temperatures compose with a corner's own thermal excursion as offsets
around the 300 K nominal).  scenarios are grouped by omega: each group
shares its Laplacian, and under `--solver krylov-block` each group
rides one blocked forward solve plus one blocked adjoint solve per
iteration; the process/remote fan-out ships one device clone per omega
group, its digest sent once per epoch per worker, exactly like the
single-device case.
aggregation: `--aggregate mean` (weighted expectation, the default) |
`worst` (tempered soft-max over the family — a differentiable worst
case whose gradient is FD-exact) | `cvar:ALPHA` (expected loss of the
worst ALPHA-tail, e.g. cvar:0.5; tail membership from detached losses,
applied as constant Rockafellar weights).
determinism: with no axes set nothing changes — single-wavelength
mean-aggregate runs stay bitwise identical to pre-scenario builds for
LU-backed backends (direct/batched) on serial/thread executors, and a
checkpoint written before the scenario axes existed refuses to resume
with a descriptive digest error (the config digest covers the axes).
with axes set, omega grouping never changes results: LU-backed
backends stay bitwise across executors and worker counts; krylov
backends agree to solver tolerance per omega group.
evaluation: `repro evaluate ... --wavelengths 1.5,1.6` re-evaluates
each Monte-Carlo fabrication draw at every wavelength (the same draws
per stratum — a paired comparison) and reports per-wavelength
statistics.  the `demux` device routes two channels to separate drop
ports and is meant to be designed under `--wavelengths` — each omega
clone targets its own drop port.

scaling out (multi-node fan-out)
--------------------------------
start one worker per host (any machine with this package installed):
    repro worker --listen 0.0.0.0:7070
then point a design or evaluation at the fleet:
    repro design bending --executor remote:hostA:7070,hostB:7070
protocol: length-prefixed, digest-checked frames; the handshake pins
the protocol version and each task-state seed ships under its own
device digest, so version skew or payload mismatch is a descriptive
error, never a hang.  task state (device + solver epoch) is shipped
once per epoch per worker; items are round-robined with work stealing,
and workers keep warm solver caches across iterations.
determinism: ordered reduction makes results independent of worker
count and scheduling — bitwise equal to serial for LU-backed solvers
(direct/batched), solver precision for krylov backends (each worker
anchors its own preconditioner).
failures: a worker that dies mid-run (connection loss, or silence
longer than --remote-timeout; busy workers emit heartbeats) has its
items resubmitted to survivors with an identical reduced result; a
task that *raises* is not resubmitted — the remote traceback surfaces
locally.  the run fails only when every worker is gone.
security: no auth/TLS yet — workers execute pickled task state, so
bind them to trusted networks only (e.g. over an SSH tunnel or VPN).

resuming and surviving crashes
------------------------------
checkpoints: `repro design ... --checkpoint-dir DIR` writes a
crash-safe checkpoint every N iterations (--checkpoint-every, default
1) plus a final one at run end.  each file lands via tmp file + fsync +
atomic rename (a kill -9 leaves the previous complete checkpoint, never
a torn one), is self-validating (magic, format version, payload
digest), carries a JSON metadata sidecar, and only the newest K survive
rotation (--checkpoint-keep, default 3).
resume: `repro design ... --resume auto --checkpoint-dir DIR` continues
from the newest *valid* checkpoint (corrupt files are skipped with a
warning); `--resume PATH` loads one file directly, and continued
checkpoints then default into that file's directory.  a checkpoint
records theta, the Adam moments and step count, the RNG stream, sampler
state, the relaxation-schedule position and the full iteration history,
so a resumed run with an LU-backed solver (direct/batched) reproduces
the uninterrupted trajectory bit-for-bit; krylov backends agree to
solver precision.  mismatches are refused loudly: truncated or
corrupted files, checkpoints from another format version, and any
difference in a trajectory-shaping setting (sampling, seed, solver,
relaxation, device, ...).  executor/worker/timeout/checkpoint knobs and
the iteration horizon may differ freely — a resume can extend a run or
move it to different hardware.
graceful shutdown: with checkpointing enabled, SIGINT/SIGTERM let the
current iteration finish, write a final checkpoint, and exit cleanly
(a second signal aborts immediately).  `repro worker` handles
SIGTERM/SIGINT by draining: in-flight tasks finish and their results
reach the wire, then the accept loop closes and the process exits 0 —
clients see a clean EOF and resubmit to surviving workers.
degradation: if *every* remote worker dies mid-run, the driver writes a
checkpoint (when enabled), logs each worker's failure, and finishes the
run on the in-process serial executor instead of aborting; connect-time
races (a worker still binding its socket) are retried with exponential
backoff (--remote-connect-retries).

observing a run
---------------
tracing: `repro design ... --trace-dir DIR` (also on `evaluate`) spans
every hot layer — engine iterations, loss, dispatch, factorizations,
krylov/blocked sweeps, remote frames, checkpoint writes — at
near-zero overhead (a disabled span is one thread-local read).  DIR
receives trace.jsonl (one record per iteration: spans + a metrics
snapshot folding solver counters and cache hit rates) and summary.txt
(per-phase wall-time breakdown); add `--trace-format jsonl,chrome` for
trace_chrome.json, loadable in chrome://tracing or https://ui.perfetto.dev.
spans cross process boundaries: process and remote workers bracket each
task in a span capture and ship the span tree + metric deltas home with
the result payload, where they are re-parented under the dispatching
span — one connected trace per run, worker pids and all.
metrics: `--metrics-every N` logs a counters/gauges snapshot every N
iterations at info level (see --log-level).  remote workers piggyback
queue depth, completed-task counts and RSS on their heartbeat frames;
the parent publishes them as `remote.worker.HOST:PORT.*` gauges.
summaries: `repro trace summarize DIR/trace.jsonl` (or the chrome file)
prints calls / total / self / mean wall time per phase, widest first.
logging: `repro --log-level debug <command>` configures logging once
for every subcommand; worker subprocesses inherit the level through
their spawn environment (REPRO_LOG_LEVEL).

running a service
-----------------
daemon: `repro serve --listen HOST:PORT --jobs-dir DIR` accepts design
jobs over the same framed protocol the workers speak.  submissions are
queued on disk under DIR (one directory per job: spec, checkpoints,
progress stream, result), run through the optimizer with checkpointing
forced on, and fanned out across `--fleet hostA:7070,hostB:7070`
workers when configured (jobs may pin their own --executor instead).
submitting: `repro submit DEVICE --connect HOST:PORT [--iterations N
--sampling S --seed K --solver B ...]` — the same trajectory-shaping
flags as `repro design`; the config is validated before the job is
queued, so a bad submission is refused immediately.  then:
    repro status [JOB] --connect HOST:PORT   # one job, or all + gauges
    repro watch JOB --connect HOST:PORT      # live iteration stream
    repro cancel JOB --connect HOST:PORT     # queued: dropped in place;
                                             # running: checkpoint+stop
watch replays the job's full progress stream from iteration 0 (the
records are the same JSONL shape --trace-dir writes), then tails it
live with heartbeat keepalives while iterations compute.
restart semantics: every job mutation lands via atomic rename, so a
daemon killed -9 mid-job loses nothing — on restart it rescans DIR,
re-queues interrupted work, and resumes each job from its newest
checkpoint (LU-backed solvers continue bitwise).  SIGTERM drains
gracefully: running jobs finish their iteration, checkpoint, and park
as 'interrupted' for the next start; queued jobs stay queued.
fleet health: status/list replies carry daemon gauges (queue depth,
jobs running, RSS) plus per-worker gauges harvested from heartbeat
frames (`remote.worker.HOST:PORT.*`).
security: like `repro worker`, no auth/TLS yet — the daemon executes
submitted configs, so bind it to trusted networks only (e.g. over an
SSH tunnel or VPN).
"""


def _add_precond_dtype_arg(p: argparse.ArgumentParser) -> None:
    """``--precond-dtype`` flag shared by ``design`` and ``evaluate``."""
    p.add_argument(
        "--precond-dtype",
        default="float64",
        choices=("float64", "float32"),
        help=(
            "precision of the preconditioner anchor factorization "
            "(krylov backends only): float32 factors a complex64 twin — "
            "half the factorization memory and time — while outer "
            "recurrences stay float64 and iterative refinement restores "
            "the full solver tolerance (default %(default)s)"
        ),
    )


def _solver_spec(args):
    """The ``--solver`` string, upgraded to a config when flags need it.

    A plain backend string round-trips untouched (keeping ``direct``
    runs on the zero-config path); ``--precond-dtype float32`` forces a
    coerced :class:`SolverConfig` carrying the override.
    """
    if getattr(args, "precond_dtype", "float64") == "float64":
        return args.solver
    from repro.fdfd.linalg import SolverConfig

    return SolverConfig.coerce(args.solver).with_overrides(
        precond_dtype=args.precond_dtype
    )


def _add_observability_args(p: argparse.ArgumentParser) -> None:
    """Tracing/metrics flags shared by ``design`` and ``evaluate``."""
    p.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help=(
            "write structured traces into DIR: trace.jsonl (per-"
            "iteration spans + metrics snapshots) and summary.txt "
            "(per-phase wall-time breakdown); see 'observing a run' "
            "below"
        ),
    )
    p.add_argument(
        "--trace-format",
        default="jsonl",
        metavar="FMT[,FMT]",
        help=(
            "trace export formats (comma-separated): jsonl | chrome "
            "(chrome adds trace_chrome.json for chrome://tracing / "
            "Perfetto; default %(default)s)"
        ),
    )
    p.add_argument(
        "--metrics-every",
        type=int,
        default=0,
        metavar="N",
        help=(
            "log a counters/gauges snapshot every N iterations at info "
            "level (0 disables; default %(default)s)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BOSON-1 reproduction: robust photonic inverse design",
        epilog=_CHOOSING_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default=None,
        help=(
            "logging level for every subcommand (default: "
            "$REPRO_LOG_LEVEL or warning); worker subprocesses inherit "
            "it through their spawn environment"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_design = sub.add_parser("design", help="run the BOSON-1 optimizer")
    p_design.add_argument("device", choices=sorted(DEVICE_REGISTRY))
    p_design.add_argument("--iterations", type=int, default=30)
    p_design.add_argument(
        "--sampling",
        choices=sorted(SAMPLING_STRATEGIES),
        default="axial+worst",
    )
    p_design.add_argument(
        "--wavelengths",
        default=None,
        metavar="UM[,UM...]",
        help=(
            "operating-wavelength axis of the scenario family "
            "(comma-separated um, e.g. 1.53,1.55,1.57); every sampled "
            "fab corner is crossed with each wavelength and grouped by "
            "omega for blocked solves (default: the device's centre "
            "wavelength only; see 'robust scenario families' below)"
        ),
    )
    p_design.add_argument(
        "--temperatures",
        default=None,
        metavar="K[,K...]",
        help=(
            "operating-temperature axis of the scenario family "
            "(comma-separated kelvin, e.g. 290,310), composed with each "
            "fab corner's own thermal excursion as offsets around 300 K "
            "(default: corner temperatures unchanged)"
        ),
    )
    p_design.add_argument(
        "--aggregate",
        default="mean",
        metavar="MODE",
        help=(
            "scenario-loss reduction: mean (weighted expectation) | "
            "worst (tempered soft-max worst case) | cvar:ALPHA "
            "(expected loss of the worst ALPHA-tail, e.g. cvar:0.5; "
            "default %(default)s)"
        ),
    )
    p_design.add_argument("--relax-epochs", type=int, default=None)
    p_design.add_argument("--seed", type=int, default=0)
    p_design.add_argument("--output", default=None, help="result JSON path")
    p_design.add_argument("--quiet", action="store_true")
    p_design.add_argument(
        "--executor",
        default="serial",
        help=(
            "corner fan-out backend: serial | thread[:n] | process[:n] | "
            "remote:host:port[,host:port...] (process forks workers, "
            "remote ships to `repro worker` hosts; both replay only the "
            "forward solves and the parent assembles the taped "
            "gradients, matching serial to solver precision)"
        ),
    )
    p_design.add_argument(
        "--remote-timeout",
        type=float,
        default=DEFAULT_REMOTE_TIMEOUT,
        metavar="SECONDS",
        help=(
            "remote executor only: declare a worker dead after this many "
            "seconds of silence (busy workers heartbeat, so long solves "
            "survive short timeouts) and resubmit its work to survivors "
            "(default %(default)s)"
        ),
    )
    p_design.add_argument(
        "--remote-connect-retries",
        type=int,
        default=DEFAULT_CONNECT_RETRIES,
        metavar="N",
        help=(
            "remote executor only: connection attempts per worker "
            "address, with exponential backoff + jitter between tries — "
            "a worker still binding its socket becomes a short wait, not "
            "a lost worker (default %(default)s)"
        ),
    )
    p_design.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "write crash-safe checkpoints into DIR (atomic rename + "
            "fsync, rotated); also arms graceful SIGINT/SIGTERM shutdown "
            "and fleet-loss checkpointing (see 'resuming and surviving "
            "crashes' below)"
        ),
    )
    p_design.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="iterations between checkpoints (default %(default)s)",
    )
    p_design.add_argument(
        "--checkpoint-keep",
        type=int,
        default=3,
        metavar="K",
        help="rotated checkpoints kept on disk (default %(default)s)",
    )
    p_design.add_argument(
        "--resume",
        default=None,
        metavar="PATH|auto",
        help=(
            "continue from a checkpoint: 'auto' picks the newest valid "
            "one under --checkpoint-dir, a path loads that file (and "
            "further checkpoints default into its directory); the "
            "checkpoint must match this run's config/device digest"
        ),
    )
    p_design.add_argument(
        "--solver",
        default="direct",
        metavar="BACKEND",
        help=(
            "linear-solver backend: direct (one LU per corner), batched "
            "(direct + multi-RHS triangular sweeps), krylov "
            "(BiCGStab preconditioned by the nominal corner's LU, "
            "recycled across the iteration's fabrication corners; a "
            "non-converging solve falls back to a direct factorization "
            "automatically), or krylov-block (krylov whose corner "
            "fan-out is one blocked BiCGStab: the preconditioner and "
            "operator are applied to the whole corner block in single "
            "matrix-RHS sweeps, columns converge independently, and "
            "non-converging corners fall back to their own direct "
            "factorizations; taped thread-pool execution and "
            "single-corner solves fall back to scalar krylov "
            "behaviour). krylov:gmres selects GMRES for the scalar "
            "solves (the block algorithm is always BiCGStab), and a "
            ":recycle modifier (e.g. krylov-block:recycle) turns on "
            "cross-iteration subspace recycling: converged solves feed "
            "a small deflation basis that strips the recycled slow "
            "modes from later nearby solves."
        ),
    )
    _add_precond_dtype_arg(p_design)
    _add_observability_args(p_design)

    p_eval = sub.add_parser("evaluate", help="post-fab Monte-Carlo eval")
    p_eval.add_argument("result", help="JSON produced by `design`/`baseline`")
    p_eval.add_argument("--samples", type=int, default=20)
    p_eval.add_argument("--seed", type=int, default=1234)
    p_eval.add_argument(
        "--executor",
        default="serial",
        help=(
            "sample fan-out backend: serial | thread[:n] | process[:n] | "
            "remote:host:port[,host:port...]"
        ),
    )
    p_eval.add_argument(
        "--remote-timeout",
        type=float,
        default=DEFAULT_REMOTE_TIMEOUT,
        metavar="SECONDS",
        help=(
            "remote executor only: dead-worker detection bound in "
            "seconds (default %(default)s)"
        ),
    )
    p_eval.add_argument(
        "--remote-connect-retries",
        type=int,
        default=DEFAULT_CONNECT_RETRIES,
        metavar="N",
        help=(
            "remote executor only: connection attempts per worker "
            "address with exponential backoff (default %(default)s)"
        ),
    )
    p_eval.add_argument(
        "--solver",
        default="direct",
        metavar="BACKEND",
        help=(
            "linear-solver backend for the evaluation solves: direct | "
            "batched | krylov[:gmres] | krylov-block (see `design "
            "--help`; krylov falls back to direct factorization on "
            "non-convergence, and krylov-block additionally batches all "
            "Monte-Carlo samples of a serial evaluation into one "
            "blocked solve; a :recycle modifier lets warm samples "
            "deflate against directions harvested from earlier ones)"
        ),
    )
    _add_precond_dtype_arg(p_eval)
    p_eval.add_argument(
        "--wavelengths",
        default=None,
        metavar="UM[,UM...]",
        help=(
            "re-evaluate every Monte-Carlo draw at each of these "
            "wavelengths (comma-separated um) and report per-wavelength "
            "statistics; omega groups share blocked solves under "
            "krylov-block (default: the device's centre wavelength only)"
        ),
    )
    p_eval.add_argument(
        "--block-chunk",
        type=int,
        default=DEFAULT_BLOCK_CHUNK,
        metavar="N",
        help=(
            "samples per blocked solve on the krylov-block path (>= 1, "
            "default %(default)s; small chunks re-anchor between cold "
            "diverse samples, large chunks maximize sweep amortization "
            "when warm)"
        ),
    )
    _add_observability_args(p_eval)

    p_worker = sub.add_parser(
        "worker",
        help="serve this host to remote corner fan-outs",
        description=(
            "Run a remote fan-out worker: design and evaluation runs on "
            "other machines reach it via --executor "
            "remote:host:port[,...].  The worker keeps solver caches "
            "warm across iterations and serves until interrupted.  No "
            "auth/TLS yet: bind to trusted networks only."
        ),
    )
    p_worker.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help=(
            "bind address (default %(default)s; port 0 picks a free "
            "port, printed on startup)"
        ),
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the design-job daemon",
        description=(
            "Run the design-job daemon: clients submit jobs with `repro "
            "submit`, the daemon queues them on disk, runs each with "
            "checkpointing forced on (a killed daemon restarts and "
            "resumes), and streams progress to `repro watch`.  See "
            "'running a service' in `repro --help`.  No auth/TLS yet: "
            "bind to trusted networks only."
        ),
    )
    p_serve.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help=(
            "bind address (default %(default)s; port 0 picks a free "
            "port, printed on startup)"
        ),
    )
    p_serve.add_argument(
        "--jobs-dir",
        required=True,
        metavar="DIR",
        help=(
            "persistent job-queue directory: one subdirectory per job "
            "(spec, checkpoints, progress stream, result); rescanned on "
            "startup so a restarted daemon resumes interrupted work"
        ),
    )
    p_serve.add_argument(
        "--fleet",
        default=None,
        metavar="ADDRS",
        help=(
            "remote worker fleet (host:port[,host:port...]) jobs fan "
            "corners out across unless they pin their own --executor; "
            "worker heartbeat gauges become the daemon's fleet-health "
            "view (default: in-process serial execution)"
        ),
    )
    p_serve.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="jobs run concurrently (default %(default)s)",
    )

    def _add_connect_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--connect",
            required=True,
            metavar="HOST:PORT",
            help="address of a running `repro serve` daemon",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=60.0,
            metavar="SECONDS",
            help=(
                "declare the daemon dead after this much silence "
                "(busy daemons heartbeat; default %(default)s)"
            ),
        )

    p_submit = sub.add_parser(
        "submit",
        help="queue a design job on a `repro serve` daemon",
        description=(
            "Queue a design job: the same trajectory-shaping flags as "
            "`repro design`, validated by the daemon before anything is "
            "queued.  Prints the job id for status/watch/cancel."
        ),
    )
    p_submit.add_argument("device", choices=sorted(DEVICE_REGISTRY))
    _add_connect_arg(p_submit)
    p_submit.add_argument("--iterations", type=int, default=30)
    p_submit.add_argument(
        "--sampling",
        choices=sorted(SAMPLING_STRATEGIES),
        default="axial+worst",
    )
    p_submit.add_argument("--relax-epochs", type=int, default=None)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument(
        "--wavelengths", default=None, metavar="UM[,UM...]",
        help="scenario wavelength axis, as for `repro design`",
    )
    p_submit.add_argument(
        "--temperatures", default=None, metavar="K[,K...]",
        help="scenario temperature axis, as for `repro design`",
    )
    p_submit.add_argument(
        "--aggregate", default="mean", metavar="MODE",
        help="scenario-loss reduction (mean | worst | cvar:ALPHA)",
    )
    p_submit.add_argument(
        "--solver", default="direct", metavar="BACKEND",
        help="linear-solver backend, as for `repro design`",
    )
    p_submit.add_argument(
        "--executor", default=None, metavar="SPEC",
        help=(
            "pin this job's corner fan-out backend (serial | thread[:n] "
            "| process[:n] | remote:...); default: the daemon's --fleet, "
            "or serial"
        ),
    )
    p_submit.add_argument(
        "--watch", action="store_true",
        help="stay connected and stream the job like `repro watch`",
    )

    p_status = sub.add_parser(
        "status",
        help="job state + daemon/fleet gauges from a daemon",
    )
    p_status.add_argument(
        "job", nargs="?", default=None,
        help="job id (omit to list every job)",
    )
    _add_connect_arg(p_status)

    p_watch = sub.add_parser(
        "watch",
        help="stream a job's iteration records until it settles",
        description=(
            "Stream a job's progress records (iteration, loss, fom) from "
            "iteration 0 and tail live until the job settles.  Exits 0 "
            "iff the job completed."
        ),
    )
    p_watch.add_argument("job", help="job id from `repro submit`")
    _add_connect_arg(p_watch)

    p_cancel = sub.add_parser(
        "cancel",
        help="cancel a queued job or soft-stop a running one",
    )
    p_cancel.add_argument("job", help="job id from `repro submit`")
    _add_connect_arg(p_cancel)

    p_trace = sub.add_parser(
        "trace",
        help="inspect trace files written by --trace-dir runs",
        description=(
            "Post-process the trace files a `--trace-dir` run leaves "
            "behind (trace.jsonl or trace_chrome.json)."
        ),
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trace_sum = trace_sub.add_parser(
        "summarize",
        help="per-phase wall-time breakdown of a trace file",
    )
    p_trace_sum.add_argument(
        "file",
        help="trace.jsonl or trace_chrome.json from a --trace-dir run",
    )

    p_base = sub.add_parser("baseline", help="run a named prior-art method")
    p_base.add_argument("device", choices=sorted(DEVICE_REGISTRY))
    p_base.add_argument("method", choices=sorted(BASELINE_REGISTRY))
    p_base.add_argument("--iterations", type=int, default=30)
    p_base.add_argument("--seed", type=int, default=0)
    p_base.add_argument("--output", default=None)

    sub.add_parser("info", help="list devices, methods and strategies")
    return parser


def _parse_axis(spec: str | None) -> tuple[float, ...] | None:
    """Comma-separated floats -> tuple (``None``/empty stays ``None``)."""
    if spec is None:
        return None
    values = tuple(float(tok) for tok in spec.split(",") if tok.strip())
    return values or None


def _cmd_design(args) -> int:
    from repro.core.checkpoint import CheckpointError, resolve_resume

    device = make_device(args.device)
    relax = (
        args.relax_epochs
        if args.relax_epochs is not None
        else max(4, args.iterations // 3)
    )
    checkpoint_dir = args.checkpoint_dir
    resume_ckpt = None
    if args.resume is not None:
        try:
            resume_path, resume_ckpt = resolve_resume(
                args.resume, checkpoint_dir
            )
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if checkpoint_dir is None:
            # Resuming an explicit file without --checkpoint-dir keeps
            # checkpointing where the resumed run left its files.
            checkpoint_dir = str(resume_path.parent)
        print(
            f"resuming from {resume_path} "
            f"(next iteration {resume_ckpt.next_iteration})"
        )
    try:
        wavelengths_um = _parse_axis(args.wavelengths)
        temperatures_k = _parse_axis(args.temperatures)
    except ValueError as exc:
        print(f"error: bad axis value: {exc}", file=sys.stderr)
        return 2
    config = OptimizerConfig(
        iterations=args.iterations,
        sampling=args.sampling,
        relax_epochs=relax,
        seed=args.seed,
        wavelengths_um=wavelengths_um,
        temperatures_k=temperatures_k,
        aggregate=args.aggregate,
        corner_executor=args.executor,
        solver=_solver_spec(args),
        remote_timeout=args.remote_timeout,
        remote_connect_retries=args.remote_connect_retries,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        checkpoint_keep=args.checkpoint_keep,
        trace_dir=args.trace_dir,
        trace_format=args.trace_format,
        metrics_every=args.metrics_every,
    )
    optimizer = Boson1Optimizer(device, config)

    def log(record):
        print(
            f"iter {record.iteration:3d}  loss {record.loss:+.4f}  "
            f"fom {record.fom:.4f}  p {record.p:.2f}"
        )

    try:
        result = optimizer.run(
            callback=None if args.quiet else log, resume=resume_ckpt
        )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result.interrupted:
        print(
            "\ninterrupted by signal; final checkpoint written.  resume "
            f"with: repro design {args.device} --resume auto "
            f"--checkpoint-dir {checkpoint_dir}"
        )
    print("\nfinal design:")
    print(ascii_pattern(result.pattern, max_width=48))
    payload = {
        "device": args.device,
        "method": "BOSON-1",
        "pattern": result.pattern,
        "fom_trace": result.fom_trace(),
        "final_loss": result.final_loss,
        "seed": args.seed,
        "iterations": args.iterations,
    }
    output = args.output or f"boson1_{args.device}_seed{args.seed}.json"
    path = save_result(payload, output)
    print(f"\nsaved to {path}")
    if args.trace_dir is not None:
        print(f"trace written to {args.trace_dir}")
    return 0


def _cmd_evaluate(args) -> int:
    payload = load_result(args.result)
    device = make_device(payload["device"])
    if args.solver != "direct":
        from repro.fdfd.workspace import SimulationWorkspace

        device.configure_simulation_cache(
            True, SimulationWorkspace(solver_config=_solver_spec(args))
        )
    process = FabricationProcess(
        device.design_shape,
        device.dl,
        context=device.litho_context(12),
        pad=12,
    )
    pattern = np.asarray(payload["pattern"], dtype=np.float64)
    session = None
    if args.trace_dir is not None:
        from repro.obs import TraceSession

        formats = tuple(
            tok.strip() for tok in args.trace_format.split(",") if tok.strip()
        )
        session = TraceSession(args.trace_dir, formats or ("jsonl",))
    try:
        try:
            wavelengths_um = _parse_axis(args.wavelengths)
        except ValueError as exc:
            print(f"error: bad axis value: {exc}", file=sys.stderr)
            return 2
        pre, _ = evaluate_ideal(device, pattern)
        report = evaluate_post_fab(
            device, process, pattern, n_samples=args.samples, seed=args.seed,
            executor=args.executor, block_chunk=args.block_chunk,
            remote_timeout=args.remote_timeout,
            remote_connect_retries=args.remote_connect_retries,
            wavelengths_um=wavelengths_um,
        )
        if session is not None:
            session.record(
                "evaluate",
                extra={
                    "mean_fom": report.mean_fom,
                    "samples": report.n_samples,
                },
                workspace=device.workspace,
            )
        if args.metrics_every:
            import logging

            from repro.obs.metrics import get_metrics

            snap = get_metrics().snapshot(device.workspace)
            logging.getLogger("repro.eval").info(
                "metrics: counters=%s gauges=%s",
                snap["counters"], snap["gauges"],
            )
    finally:
        if session is not None:
            session.close()
            print(f"trace written to {args.trace_dir}")
    better = "lower" if device.fom_lower_is_better else "higher"
    print(f"device          : {payload['device']} ({better} FoM is better)")
    print(f"method          : {payload.get('method', '?')}")
    print(f"pre-fab FoM     : {pre:.4g}")
    print(
        f"post-fab FoM    : {report.mean_fom:.4g} +- {report.std_fom:.4g} "
        f"({report.n_samples} samples)"
    )
    print(f"worst sample    : {report.worst_fom:.4g}")
    strata = report.stratified_foms()
    if len(strata) > 1 or None not in strata:
        worst = np.max if device.fom_lower_is_better else np.min
        for lam, foms in strata.items():
            print(
                f"  lam={lam:g}um  : {np.mean(foms):.4g} +- "
                f"{np.std(foms):.4g}  worst {worst(foms):.4g}"
            )
    return 0


def _cmd_baseline(args) -> int:
    device = make_device(args.device)
    process = FabricationProcess(
        device.design_shape,
        device.dl,
        context=device.litho_context(12),
        pad=12,
    )
    result = run_baseline(
        args.method, device, process, iterations=args.iterations,
        seed=args.seed,
    )
    print(ascii_pattern(result.mask, max_width=48))
    payload = {
        "device": args.device,
        "method": args.method,
        "pattern": result.mask,
        "design_pattern": result.design_pattern,
        "seed": args.seed,
        "iterations": args.iterations,
    }
    output = (
        args.output
        or f"{args.method.lower()}_{args.device}_seed{args.seed}.json"
    )
    path = save_result(payload, output)
    print(f"saved to {path}")
    return 0


def _cmd_worker(args) -> int:
    import os
    import signal

    from repro.core.remote import (
        PROTOCOL_VERSION,
        RemoteWorkerServer,
        parse_worker_addresses,
    )

    try:
        addresses = parse_worker_addresses(args.listen)
        if len(addresses) != 1:
            raise ValueError(
                f"--listen takes exactly one address, got {len(addresses)}"
            )
    except ValueError as exc:
        print(
            f"error: --listen expects HOST:PORT, got {args.listen!r} ({exc})",
            file=sys.stderr,
        )
        return 2
    host, port = addresses[0]
    server = RemoteWorkerServer(host, port)

    def _graceful(signum, _frame):
        # Drain instead of dying: stop accepting, let in-flight tasks
        # finish and their result frames hit the wire, then exit 0.
        # serve_forever does the waiting; this handler only flips the
        # flag and unblocks accept(), so it is safe at signal time.
        print(
            f"repro worker pid {os.getpid()}: received "
            f"{signal.Signals(signum).name}, draining in-flight tasks "
            "before exit",
            file=sys.stderr,
            flush=True,
        )
        server.request_graceful_shutdown()

    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, _graceful)
    # The parseable startup line doubles as the port announcement for
    # --listen host:0 (tests and scripts scrape it).
    print(
        f"repro worker listening on {server.host}:{server.port} "
        f"(protocol v{PROTOCOL_VERSION}, pid {os.getpid()})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    print(
        f"repro worker pid {os.getpid()}: drained, exiting cleanly",
        flush=True,
    )
    return 0


def _cmd_serve(args) -> int:
    import os
    import signal

    from repro.core.remote import PROTOCOL_VERSION, parse_worker_addresses
    from repro.core.serve import ServeDaemon

    try:
        addresses = parse_worker_addresses(args.listen)
        if len(addresses) != 1:
            raise ValueError(
                f"--listen takes exactly one address, got {len(addresses)}"
            )
    except ValueError as exc:
        print(
            f"error: --listen expects HOST:PORT, got {args.listen!r} ({exc})",
            file=sys.stderr,
        )
        return 2
    fleet = None
    if args.fleet is not None:
        try:
            fleet = parse_worker_addresses(args.fleet)
        except ValueError as exc:
            print(f"error: bad --fleet: {exc}", file=sys.stderr)
            return 2
    host, port = addresses[0]
    try:
        daemon = ServeDaemon(
            args.jobs_dir, host, port, fleet=fleet, parallel=args.parallel
        )
    except (OSError, ValueError) as exc:
        print(f"error: cannot start daemon: {exc}", file=sys.stderr)
        return 2

    def _graceful(signum, _frame):
        # Drain instead of dying: stop accepting, soft-stop running
        # jobs so each finishes its iteration and checkpoints, park
        # them as 'interrupted' for the next start, then exit 0.
        print(
            f"repro serve pid {os.getpid()}: received "
            f"{signal.Signals(signum).name}, checkpointing running jobs "
            "before exit",
            file=sys.stderr,
            flush=True,
        )
        daemon.request_graceful_shutdown()

    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, _graceful)
    # The parseable startup line doubles as the port announcement for
    # --listen host:0 (tests and scripts scrape it).
    print(
        f"repro serve listening on {daemon.host}:{daemon.port} "
        f"(protocol v{PROTOCOL_VERSION}, pid {os.getpid()}, "
        f"jobs {args.jobs_dir})",
        flush=True,
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.shutdown()
    print(
        f"repro serve pid {os.getpid()}: drained, exiting cleanly",
        flush=True,
    )
    return 0


def _serve_client(args):
    """Connect to the daemon named by ``--connect`` (or exit 2)."""
    from repro.core.remote import parse_worker_addresses
    from repro.core.serve import ServeClient, ServeError

    try:
        addresses = parse_worker_addresses(args.connect)
        if len(addresses) != 1:
            raise ValueError(
                f"--connect takes exactly one address, got {len(addresses)}"
            )
    except ValueError as exc:
        print(
            f"error: --connect expects HOST:PORT, got "
            f"{args.connect!r} ({exc})",
            file=sys.stderr,
        )
        return None
    try:
        return ServeClient(addresses[0], timeout=args.timeout)
    except (OSError, ServeError) as exc:
        print(
            f"error: cannot reach daemon at {args.connect}: {exc}",
            file=sys.stderr,
        )
        return None


def _print_job_line(job: dict) -> None:
    extra = ""
    if job.get("cancelling"):
        extra = "  (cancelling)"
    elif job.get("error"):
        first = str(job["error"]).strip().splitlines()[-1]
        extra = f"  ({first})"
    print(
        f"{job['id']}  {job['status']:<11}  device {job['device']}"
        f"  iterations {job['iterations_done']}{extra}"
    )


def _watch_stream(client, job_id: str) -> int:
    """Stream one job to stdout; exit 0 iff it completed."""
    from repro.core.serve import ServeError

    def on_record(record):
        loss = record.get("loss")
        fom = record.get("fom")
        print(
            f"iter {record.get('iteration', '?'):>3}  "
            f"loss {loss:+.4f}  fom {fom:.4f}"
            if isinstance(loss, float) and isinstance(fom, float)
            else f"iter {record.get('iteration', '?')}  {record}"
        )

    try:
        final = client.watch(job_id, on_record=on_record)
    except (OSError, ServeError) as exc:
        print(f"error: watch failed: {exc}", file=sys.stderr)
        return 1
    print(f"\n{final['id']} settled: {final['status']}")
    if final.get("error"):
        print(final["error"], file=sys.stderr)
    return 0 if final["status"] == "completed" else 1


def _cmd_submit(args) -> int:
    from repro.core.serve import ServeError

    try:
        wavelengths_um = _parse_axis(args.wavelengths)
        temperatures_k = _parse_axis(args.temperatures)
    except ValueError as exc:
        print(f"error: bad axis value: {exc}", file=sys.stderr)
        return 2
    config = {
        "iterations": args.iterations,
        "sampling": args.sampling,
        "relax_epochs": (
            args.relax_epochs
            if args.relax_epochs is not None
            else max(4, args.iterations // 3)
        ),
        "seed": args.seed,
        "wavelengths_um": wavelengths_um,
        "temperatures_k": temperatures_k,
        "aggregate": args.aggregate,
        "solver": args.solver,
    }
    if args.executor is not None:
        config["corner_executor"] = args.executor
    client = _serve_client(args)
    if client is None:
        return 2
    with client:
        try:
            job = client.submit(args.device, config)
        except (OSError, ServeError) as exc:
            print(f"error: submit refused: {exc}", file=sys.stderr)
            return 2
        print(
            f"submitted {job['id']} ({job['device']}, "
            f"{config['iterations']} iterations)"
        )
        if args.watch:
            return _watch_stream(client, job["id"])
    return 0


def _cmd_status(args) -> int:
    from repro.core.serve import ServeError

    client = _serve_client(args)
    if client is None:
        return 2
    with client:
        try:
            if args.job is None:
                reply = client.list_jobs()
                jobs = reply["jobs"]
            else:
                reply = client.status(args.job)
                jobs = [reply["job"]]
        except (OSError, ServeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    for job in jobs:
        _print_job_line(job)
    if not jobs:
        print("no jobs")
    daemon = reply.get("daemon") or {}
    print(
        f"\ndaemon: queue depth {daemon.get('queue_depth')}, "
        f"running {daemon.get('jobs_running')}, "
        f"rss {daemon.get('rss_bytes', 0) / 1e6:.0f} MB"
    )
    fleet = reply.get("fleet") or {}
    if fleet:
        print("fleet gauges:")
        for name in sorted(fleet):
            print(f"  {name} = {fleet[name]}")
    return 0


def _cmd_watch(args) -> int:
    client = _serve_client(args)
    if client is None:
        return 2
    with client:
        return _watch_stream(client, args.job)


def _cmd_cancel(args) -> int:
    from repro.core.serve import ServeError

    client = _serve_client(args)
    if client is None:
        return 2
    with client:
        try:
            job = client.cancel(args.job)
        except (OSError, ServeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if job.get("cancelling"):
        print(
            f"{job['id']}: stop requested; the running iteration will "
            "finish and checkpoint before the job settles as cancelled"
        )
    else:
        print(f"{job['id']}: {job['status']}")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs.export import (
        format_summary,
        load_trace_records,
        summarize_records,
    )

    try:
        records = load_trace_records(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.file!r}: {exc}",
              file=sys.stderr)
        return 2
    if not records:
        print(f"no spans in {args.file}")
        return 0
    print(format_summary(summarize_records(records)))
    return 0


def _cmd_info(_args) -> int:
    print("devices   :", ", ".join(sorted(DEVICE_REGISTRY)))
    print("methods   :", ", ".join(sorted(BASELINE_REGISTRY)))
    print("sampling  :", ", ".join(sorted(SAMPLING_STRATEGIES)))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # One logging setup for every subcommand; configure_logging exports
    # the resolved level to REPRO_LOG_LEVEL so worker subprocesses
    # (process pools, `repro worker` spawns) inherit it.
    configure_logging(args.log_level)
    handlers = {
        "design": _cmd_design,
        "evaluate": _cmd_evaluate,
        "baseline": _cmd_baseline,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "watch": _cmd_watch,
        "cancel": _cmd_cancel,
        "trace": _cmd_trace,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
