"""Core :class:`Tensor` type and the reverse-mode tape.

A :class:`Tensor` wraps a real numpy array together with (optionally) the
information needed to backpropagate through the operation that produced it:
its parent tensors and a list of backward closures mapping the output
cotangent to each parent's cotangent contribution.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables tape recording.

    Inside the block every operation produces constant tensors; useful for
    evaluation passes (e.g. Monte-Carlo robustness checks) where gradients
    are not needed and the tape would waste memory.
    """
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def is_grad_enabled() -> bool:
    """Whether operations currently record to the tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    return arr


class Tensor:
    """A real array plus optional autodiff tape metadata.

    Parameters
    ----------
    data:
        Anything convertible to a ``float64`` numpy array.
    requires_grad:
        If True, ``backward()`` accumulates a gradient into ``self.grad``.
    parents / backward_fns / op_name:
        Tape metadata; filled in by operations, not by callers.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_backward_fns", "_op_name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fns: Sequence[Callable[[np.ndarray], np.ndarray | None]] = (),
        op_name: str = "leaf",
    ):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._parents: tuple[Tensor, ...] = tuple(parents)
        self._backward_fns = tuple(backward_fns)
        self._op_name = op_name
        if len(self._parents) != len(self._backward_fns):
            raise ValueError("parents and backward_fns must have equal length")

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        """Return the value of a scalar (or size-1) tensor as a float."""
        if self.data.size != 1:
            raise TypeError(
                f"item() requires a size-1 tensor, got shape {self.shape}"
            )
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, do not mutate)."""
        return self.data

    def detach(self) -> "Tensor":
        """A constant tensor sharing this tensor's data, cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op_name!r}{grad_flag})"

    # ------------------------------------------------------------------ #
    # Backward pass                                                      #
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Cotangent seed.  Defaults to 1 for scalar tensors; required for
            non-scalars.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only valid "
                    f"for scalar tensors; this tensor has shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.broadcast_to(_as_array(grad), self.data.shape).astype(np.float64)

        order = self._toposort()
        grads: dict[int, np.ndarray] = {id(self): np.array(grad, copy=True)}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and not node._parents:
                if node.grad is None:
                    node.grad = np.zeros_like(node.data)
                node.grad = node.grad + node_grad
            elif node.requires_grad and node._parents:
                # Interior nodes may also be flagged to retain grads.
                pass
            for parent, fn in zip(node._parents, node._backward_fns):
                if not parent._needs_grad():
                    continue
                contribution = fn(node_grad)
                if contribution is None:
                    continue
                contribution = _unbroadcast(
                    np.asarray(contribution, dtype=np.float64), parent.shape
                )
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contribution
                else:
                    grads[key] = contribution

    def _needs_grad(self) -> bool:
        return self.requires_grad or bool(self._parents)

    def _toposort(self) -> list["Tensor"]:
        """Reverse topological order starting at ``self``."""
        visited: set[int] = set()
        order: list[Tensor] = []
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Operator sugar (implementations live in repro.autodiff.ops)        #
    # ------------------------------------------------------------------ #
    def __add__(self, other):
        from repro.autodiff import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __mul__(self, other):
        from repro.autodiff import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __sub__(self, other):
        from repro.autodiff import ops

        return ops.sub(self, other)

    def __rsub__(self, other):
        from repro.autodiff import ops

        return ops.sub(other, self)

    def __truediv__(self, other):
        from repro.autodiff import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):
        from repro.autodiff import ops

        return ops.div(other, self)

    def __neg__(self):
        from repro.autodiff import ops

        return ops.neg(self)

    def __pow__(self, exponent):
        from repro.autodiff import ops

        return ops.power(self, exponent)

    def __getitem__(self, index):
        from repro.autodiff import ops

        return ops.getitem(self, index)

    def sum(self, axis=None, keepdims: bool = False):
        from repro.autodiff import functional

        return functional.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.autodiff import functional

        return functional.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.autodiff import functional

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return functional.reshape(self, shape)

    # Comparisons return plain boolean arrays (no gradient flows).
    def __gt__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data > other_data

    def __lt__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data < other_data

    def __ge__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data >= other_data

    def __le__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data <= other_data


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Create a leaf :class:`Tensor` (convenience constructor)."""
    if isinstance(data, Tensor):
        return Tensor(data.data, requires_grad=requires_grad)
    return Tensor(data, requires_grad=requires_grad)


def make_op(
    out_data: np.ndarray,
    parents: Iterable[Tensor],
    backward_fns: Iterable[Callable[[np.ndarray], np.ndarray | None]],
    op_name: str,
) -> Tensor:
    """Build an op result tensor, honouring the global no-grad switch.

    Only parents participating in differentiation (leaves with
    ``requires_grad`` or interior nodes) are recorded; if none qualify or
    recording is disabled the result is a constant.
    """
    parents = tuple(parents)
    backward_fns = tuple(backward_fns)
    if not _GRAD_ENABLED or not any(p._needs_grad() for p in parents):
        return Tensor(out_data)
    return Tensor(
        out_data,
        parents=parents,
        backward_fns=backward_fns,
        op_name=op_name,
    )
