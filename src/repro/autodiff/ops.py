"""Primitive differentiable operations and the custom-VJP hook.

Each op computes its numpy result eagerly and registers backward closures on
the tape via :func:`repro.autodiff.tensor.make_op`.  Backward closures map
the output cotangent ``g`` to each parent's cotangent contribution; numpy
broadcasting in the forward pass is undone by summation in
``Tensor.backward``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor, make_op

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "power",
    "getitem",
    "custom_vjp",
    "custom_vjp_with_residuals",
    "as_tensor",
]


def as_tensor(value) -> Tensor:
    """Coerce numbers / arrays to constant tensors; pass tensors through."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data + b.data
    return make_op(out, (a, b), (lambda g: g, lambda g: g), "add")


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data - b.data
    return make_op(out, (a, b), (lambda g: g, lambda g: -g), "sub")


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data * b.data
    a_data, b_data = a.data, b.data
    return make_op(
        out,
        (a, b),
        (lambda g: g * b_data, lambda g: g * a_data),
        "mul",
    )


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data / b.data
    a_data, b_data = a.data, b.data
    return make_op(
        out,
        (a, b),
        (
            lambda g: g / b_data,
            lambda g: -g * a_data / (b_data * b_data),
        ),
        "div",
    )


def neg(a) -> Tensor:
    a = as_tensor(a)
    return make_op(-a.data, (a,), (lambda g: -g,), "neg")


def power(a, exponent: float) -> Tensor:
    """Elementwise power with a *constant* real exponent."""
    a = as_tensor(a)
    if isinstance(exponent, Tensor):
        raise TypeError("power() exponent must be a constant, not a Tensor")
    exponent = float(exponent)
    out = a.data**exponent
    a_data = a.data

    def backward(g):
        return g * exponent * a_data ** (exponent - 1.0)

    return make_op(out, (a,), (backward,), "power")


def getitem(a, index) -> Tensor:
    """Differentiable slicing / fancy indexing."""
    a = as_tensor(a)
    out = a.data[index]
    shape = a.data.shape

    def backward(g):
        full = np.zeros(shape, dtype=np.float64)
        np.add.at(full, index, g)
        return full

    return make_op(np.array(out, copy=True), (a,), (backward,), "getitem")


def custom_vjp(
    forward: Callable[..., np.ndarray],
    vjp: Callable[..., Sequence[np.ndarray | None]],
    name: str = "custom",
) -> Callable[..., Tensor]:
    """Register a black-box differentiable operation.

    Parameters
    ----------
    forward:
        ``forward(*arrays) -> array``; operates on raw numpy arrays.
    vjp:
        ``vjp(g, out, *arrays) -> sequence of cotangents`` (one per input,
        ``None`` for non-differentiable inputs), where ``g`` is the output
        cotangent and ``out`` the forward result.
    name:
        Tape label for debugging.

    Returns
    -------
    callable
        A function of :class:`Tensor` (or array) inputs returning a
        :class:`Tensor`.  This is how the FDFD adjoint and the lithography
        model plug into the autodiff graph.
    """

    def wrapped(*inputs) -> Tensor:
        tensors = tuple(as_tensor(x) for x in inputs)
        arrays = tuple(t.data for t in tensors)
        out = np.asarray(forward(*arrays), dtype=np.float64)

        def make_backward(position: int):
            def backward(g):
                cotangents = vjp(g, out, *arrays)
                if len(cotangents) != len(arrays):
                    raise ValueError(
                        f"custom op {name!r}: vjp returned {len(cotangents)} "
                        f"cotangents for {len(arrays)} inputs"
                    )
                return cotangents[position]

            return backward

        backward_fns = tuple(make_backward(i) for i in range(len(tensors)))
        return make_op(out, tensors, backward_fns, name)

    wrapped.__name__ = name
    return wrapped


def custom_vjp_with_residuals(
    forward: Callable[..., tuple],
    vjp: Callable[..., Sequence[np.ndarray | None]],
    name: str = "custom",
) -> Callable[..., Tensor]:
    """Like :func:`custom_vjp`, but the forward pass keeps residuals.

    For expensive ops (an FDFD solve costs a sparse LU factorization) the
    backward pass must not re-run the forward.  Here

    * ``forward(*arrays) -> (out, residuals)`` — ``residuals`` is any
      object (e.g. the factorized solver + fields) closed over for the
      backward pass;
    * ``vjp(g, out, residuals, *arrays) -> cotangents`` — one per input.

    Cotangents are computed once per backward call and memoized, so
    multi-input ops do not repeat the adjoint work per input.
    """

    def wrapped(*inputs) -> Tensor:
        tensors = tuple(as_tensor(x) for x in inputs)
        arrays = tuple(t.data for t in tensors)
        out, residuals = forward(*arrays)
        out = np.asarray(out, dtype=np.float64)

        cache: dict[int, Sequence[np.ndarray | None]] = {}

        def make_backward(position: int):
            def backward(g):
                key = id(g)
                if key not in cache:
                    cotangents = vjp(g, out, residuals, *arrays)
                    if len(cotangents) != len(arrays):
                        raise ValueError(
                            f"custom op {name!r}: vjp returned "
                            f"{len(cotangents)} cotangents for "
                            f"{len(arrays)} inputs"
                        )
                    cache.clear()
                    cache[key] = cotangents
                return cache[key][position]

            return backward

        backward_fns = tuple(make_backward(i) for i in range(len(tensors)))
        return make_op(out, tensors, backward_fns, name)

    wrapped.__name__ = name
    return wrapped
