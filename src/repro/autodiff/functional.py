"""Differentiable array functions built on the primitive ops.

These mirror the small slice of the numpy API that the BOSON-1 optimization
chain needs: reductions, nonlinearities used by projections (tanh/sigmoid),
penalty algebra (relu / maximum), shape manipulation, and the bilinear
upsampling used by the level-set knot grid.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import Tensor, make_op
from repro.autodiff.ops import as_tensor

__all__ = [
    "sum",
    "mean",
    "reshape",
    "transpose",
    "exp",
    "log",
    "sqrt",
    "abs",
    "tanh",
    "sigmoid",
    "softplus",
    "relu",
    "maximum",
    "minimum",
    "clip",
    "where",
    "pad_constant",
    "stack",
    "concatenate",
    "upsample_bilinear",
    "conv2d_fft",
    "dot",
]

_np_sum = np.sum
_np_abs = np.abs


def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    """Differentiable ``numpy.sum``."""
    a = as_tensor(a)
    out = _np_sum(a.data, axis=axis, keepdims=keepdims)
    shape = a.data.shape

    def backward(g):
        g = np.asarray(g, dtype=np.float64)
        if axis is None:
            return np.broadcast_to(g, shape).copy()
        if not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            g = np.expand_dims(g, axes)
        return np.broadcast_to(g, shape).copy()

    return make_op(np.asarray(out, dtype=np.float64), (a,), (backward,), "sum")


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    """Differentiable ``numpy.mean``."""
    a = as_tensor(a)
    if axis is None:
        count = a.data.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = 1
        for ax in axes:
            count *= a.data.shape[ax]
    return sum(a, axis=axis, keepdims=keepdims) * (1.0 / count)


def reshape(a, shape) -> Tensor:
    a = as_tensor(a)
    out = a.data.reshape(shape)
    orig = a.data.shape

    def backward(g):
        return np.asarray(g).reshape(orig)

    return make_op(out, (a,), (backward,), "reshape")


def transpose(a, axes=None) -> Tensor:
    a = as_tensor(a)
    out = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)

    def backward(g):
        return np.transpose(g, inverse)

    return make_op(out, (a,), (backward,), "transpose")


def exp(a) -> Tensor:
    a = as_tensor(a)
    out = np.exp(a.data)

    def backward(g):
        return g * out

    return make_op(out, (a,), (backward,), "exp")


def log(a) -> Tensor:
    a = as_tensor(a)
    out = np.log(a.data)
    a_data = a.data

    def backward(g):
        return g / a_data

    return make_op(out, (a,), (backward,), "log")


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    out = np.sqrt(a.data)

    def backward(g):
        return g * 0.5 / out

    return make_op(out, (a,), (backward,), "sqrt")


def abs(a) -> Tensor:
    a = as_tensor(a)
    out = _np_abs(a.data)
    sign = np.sign(a.data)

    def backward(g):
        return g * sign

    return make_op(out, (a,), (backward,), "abs")


def tanh(a) -> Tensor:
    a = as_tensor(a)
    out = np.tanh(a.data)

    def backward(g):
        return g * (1.0 - out * out)

    return make_op(out, (a,), (backward,), "tanh")


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    out = 1.0 / (1.0 + np.exp(-a.data))

    def backward(g):
        return g * out * (1.0 - out)

    return make_op(out, (a,), (backward,), "sigmoid")


def softplus(a, beta: float = 1.0) -> Tensor:
    """Numerically stable ``log(1 + exp(beta x)) / beta``."""
    a = as_tensor(a)
    x = beta * a.data
    out = (np.logaddexp(0.0, x)) / beta
    sig = 1.0 / (1.0 + np.exp(-x))

    def backward(g):
        return g * sig

    return make_op(out, (a,), (backward,), "softplus")


def relu(a) -> Tensor:
    """``max(0, x)`` — the ``[.]_+`` operator of Eq. (2)."""
    a = as_tensor(a)
    mask = a.data > 0
    out = np.where(mask, a.data, 0.0)

    def backward(g):
        return g * mask

    return make_op(out, (a,), (backward,), "relu")


def maximum(a, b) -> Tensor:
    """Elementwise maximum; at ties the gradient is split evenly."""
    a, b = as_tensor(a), as_tensor(b)
    out = np.maximum(a.data, b.data)
    a_wins = a.data > b.data
    tie = a.data == b.data

    def backward_a(g):
        return g * (a_wins + 0.5 * tie)

    def backward_b(g):
        return g * (~a_wins & ~tie) + g * 0.5 * tie

    return make_op(out, (a, b), (backward_a, backward_b), "maximum")


def minimum(a, b) -> Tensor:
    """Elementwise minimum; at ties the gradient is split evenly."""
    a, b = as_tensor(a), as_tensor(b)
    out = np.minimum(a.data, b.data)
    a_wins = a.data < b.data
    tie = a.data == b.data

    def backward_a(g):
        return g * (a_wins + 0.5 * tie)

    def backward_b(g):
        return g * (~a_wins & ~tie) + g * 0.5 * tie

    return make_op(out, (a, b), (backward_a, backward_b), "minimum")


def clip(a, lo: float, hi: float) -> Tensor:
    """Clamp to ``[lo, hi]``; gradient is 1 strictly inside, else 0."""
    a = as_tensor(a)
    out = np.clip(a.data, lo, hi)
    mask = (a.data > lo) & (a.data < hi)

    def backward(g):
        return g * mask

    return make_op(out, (a,), (backward,), "clip")


def where(condition, a, b) -> Tensor:
    """Differentiable select; ``condition`` is a constant boolean array."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    cond = cond.astype(bool)
    a, b = as_tensor(a), as_tensor(b)
    out = np.where(cond, a.data, b.data)

    def backward_a(g):
        return g * cond

    def backward_b(g):
        return g * (~cond)

    return make_op(out, (a, b), (backward_a, backward_b), "where")


def pad_constant(a, pad_width, value: float = 0.0) -> Tensor:
    """``numpy.pad`` with constant fill; gradient crops the padding."""
    a = as_tensor(a)
    out = np.pad(a.data, pad_width, mode="constant", constant_values=value)
    if isinstance(pad_width, int):
        pad_width = [(pad_width, pad_width)] * a.data.ndim
    pad_width = [
        (p, p) if isinstance(p, int) else tuple(p) for p in pad_width
    ]
    if len(pad_width) == 1 and a.data.ndim > 1:
        pad_width = pad_width * a.data.ndim
    slices = tuple(
        slice(before, before + dim)
        for (before, _), dim in zip(pad_width, a.data.shape)
    )

    def backward(g):
        return np.asarray(g)[slices]

    return make_op(out, (a,), (backward,), "pad_constant")


def stack(tensors, axis: int = 0) -> Tensor:
    """Differentiable ``numpy.stack``."""
    tensors = [as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def make_backward(i):
        def backward(g):
            return np.take(np.asarray(g), i, axis=axis)

        return backward

    return make_op(
        out, tensors, tuple(make_backward(i) for i in range(len(tensors))), "stack"
    )


def concatenate(tensors, axis: int = 0) -> Tensor:
    """Differentiable ``numpy.concatenate``."""
    tensors = [as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def make_backward(i):
        def backward(g):
            g = np.asarray(g)
            idx = [slice(None)] * g.ndim
            idx[axis] = slice(offsets[i], offsets[i + 1])
            return g[tuple(idx)]

        return backward

    return make_op(
        out,
        tensors,
        tuple(make_backward(i) for i in range(len(tensors))),
        "concatenate",
    )


def _bilinear_weights(n_out: int, n_in: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample positions & weights mapping a length-``n_in`` axis to ``n_out``.

    Uses the align-corners convention so that knot boundaries map exactly to
    image boundaries, which keeps level-set boundaries stable under
    resolution changes.
    """
    if n_in == 1:
        lo = np.zeros(n_out, dtype=int)
        return lo, lo, np.zeros(n_out)
    positions = np.linspace(0.0, n_in - 1.0, n_out)
    lo = np.floor(positions).astype(int)
    lo = np.clip(lo, 0, n_in - 2)
    frac = positions - lo
    return lo, lo + 1, frac


def upsample_bilinear(a, out_shape: tuple[int, int]) -> Tensor:
    """Bilinearly upsample a 2-D tensor to ``out_shape`` (align-corners).

    This is the interpolation that expands the coarse level-set knot grid
    onto the simulation grid.
    """
    a = as_tensor(a)
    if a.data.ndim != 2:
        raise ValueError(f"upsample_bilinear expects 2-D input, got {a.shape}")
    n_out_x, n_out_y = out_shape
    n_in_x, n_in_y = a.data.shape
    x_lo, x_hi, fx = _bilinear_weights(n_out_x, n_in_x)
    y_lo, y_hi, fy = _bilinear_weights(n_out_y, n_in_y)

    fx_col = fx[:, None]
    fy_row = fy[None, :]
    w00 = (1 - fx_col) * (1 - fy_row)
    w01 = (1 - fx_col) * fy_row
    w10 = fx_col * (1 - fy_row)
    w11 = fx_col * fy_row

    data = a.data
    out = (
        w00 * data[np.ix_(x_lo, y_lo)]
        + w01 * data[np.ix_(x_lo, y_hi)]
        + w10 * data[np.ix_(x_hi, y_lo)]
        + w11 * data[np.ix_(x_hi, y_hi)]
    )

    def backward(g):
        g = np.asarray(g, dtype=np.float64)
        grad = np.zeros((n_in_x, n_in_y), dtype=np.float64)
        # Scatter-add each corner contribution.
        np.add.at(grad, (x_lo[:, None], y_lo[None, :]), g * w00)
        np.add.at(grad, (x_lo[:, None], y_hi[None, :]), g * w01)
        np.add.at(grad, (x_hi[:, None], y_lo[None, :]), g * w10)
        np.add.at(grad, (x_hi[:, None], y_hi[None, :]), g * w11)
        return grad

    return make_op(out, (a,), (backward,), "upsample_bilinear")


def conv2d_fft(a, kernel: np.ndarray) -> Tensor:
    """Circular 2-D convolution with a constant real kernel, via FFT.

    The kernel is held fixed (not differentiated); the VJP with respect to
    the input is correlation with the kernel, also via FFT.  Used for
    Gaussian-blur MFS control and as a building block of the lithography
    model's real-kernel fallback.
    """
    a = as_tensor(a)
    if a.data.ndim != 2:
        raise ValueError(f"conv2d_fft expects 2-D input, got {a.shape}")
    kernel = np.asarray(kernel, dtype=np.float64)
    if kernel.shape != a.data.shape:
        raise ValueError(
            f"kernel shape {kernel.shape} must match input shape {a.data.shape}; "
            "pad the kernel to the grid first"
        )
    k_hat = np.fft.rfft2(kernel)
    out = np.fft.irfft2(np.fft.rfft2(a.data) * k_hat, s=a.data.shape)

    def backward(g):
        g = np.asarray(g, dtype=np.float64)
        return np.fft.irfft2(np.fft.rfft2(g) * np.conj(k_hat), s=g.shape)

    return make_op(out, (a,), (backward,), "conv2d_fft")


def dot(a, b) -> Tensor:
    """Inner product of two equally-shaped tensors (flattened)."""
    a, b = as_tensor(a), as_tensor(b)
    out = float(np.vdot(a.data, b.data))
    a_data, b_data = a.data, b.data

    def backward_a(g):
        return np.asarray(g) * b_data

    def backward_b(g):
        return np.asarray(g) * a_data

    return make_op(np.float64(out), (a, b), (backward_a, backward_b), "dot")
