"""Minimal reverse-mode automatic differentiation over real numpy arrays.

The BOSON-1 optimization chain

    theta -> pattern -> lithography -> etching -> permittivity -> FoM

is differentiated end to end.  The electromagnetic piece (FDFD solve +
monitors) is registered as a *custom op* whose vector-Jacobian product runs
one adjoint simulation; everything else (level-set projection, convolution
kernels, penalty algebra, Eq. 2/3 blending) is ordinary array math handled
here.

Design notes
------------
* Values are real ``numpy.float64`` arrays.  Complex arithmetic stays inside
  custom ops (lithography kernels, FDFD fields) which expose real-in /
  real-out interfaces with hand-derived VJPs.
* The graph is a dynamic tape (define-by-run): each :class:`Tensor` records
  its parents and a backward closure; ``Tensor.backward()`` walks the tape
  in reverse topological order.
* Broadcasting follows numpy semantics; gradients are un-broadcast by
  summation, as in autograd/JAX.

Public surface
--------------
:class:`Tensor`, :func:`tensor`, :func:`custom_vjp` and the functional
namespace :mod:`repro.autodiff.functional` (also re-exported here).
"""

from repro.autodiff.tensor import Tensor, tensor, no_grad, is_grad_enabled
from repro.autodiff.ops import custom_vjp
from repro.autodiff import functional
from repro.autodiff.functional import (
    abs as abs_,
    clip,
    concatenate,
    exp,
    log,
    maximum,
    mean,
    minimum,
    pad_constant,
    relu,
    reshape,
    sigmoid,
    softplus,
    sqrt,
    stack,
    sum as sum_,
    tanh,
    upsample_bilinear,
    where,
)

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "custom_vjp",
    "functional",
    "abs_",
    "clip",
    "concatenate",
    "exp",
    "log",
    "maximum",
    "mean",
    "minimum",
    "pad_constant",
    "relu",
    "reshape",
    "sigmoid",
    "softplus",
    "sqrt",
    "stack",
    "sum_",
    "tanh",
    "upsample_bilinear",
    "where",
]
