"""Shared projection transforms for the parameterizations."""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor
from repro.autodiff import functional as F
from repro.autodiff.ops import as_tensor, custom_vjp

__all__ = ["smooth_heaviside", "heaviside_ste"]


def smooth_heaviside(phi, beta: float) -> Tensor:
    """Differentiable Heaviside ``(tanh(beta phi) + 1) / 2``.

    Maps a level-set function to material occupancy in (0, 1); the
    transition width is ~1/beta in level-set units.
    """
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    return (F.tanh(as_tensor(phi) * beta) + 1.0) * 0.5


def heaviside_ste(phi, beta: float) -> Tensor:
    """Hard Heaviside forward, smooth-tanh gradient backward.

    The forward pass emits an exactly binary pattern ``1[phi > 0]`` (what
    a level-set design *means* physically); the backward pass uses the
    derivative of :func:`smooth_heaviside` so that gradients keep flowing
    to knots near the boundary.
    """
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")

    def forward(phi_arr):
        return (phi_arr > 0).astype(np.float64)

    def vjp(g, out, phi_arr):
        sech2 = 1.0 - np.tanh(beta * phi_arr) ** 2
        return (g * 0.5 * beta * sech2,)

    op = custom_vjp(forward, vjp, name="heaviside_ste")
    return op(as_tensor(phi))
