"""Design-variable initializers, including light-concentrated path init.

Paper Sec. III-D3: random initialization scatters light, starves the
output monitor of gradient, and strands the optimizer at physically
unstable local resonances.  The cure is to seed the design with "simple
yet effective geometry with concentrated optical paths" — here, a union of
waveguide-like capsules connecting the device ports — and derive ``theta``
from that geometry's signed-distance field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = [
    "PathSegment",
    "rasterize_segments",
    "signed_distance",
    "theta_from_pattern",
    "random_theta",
]


@dataclass(frozen=True)
class PathSegment:
    """A capsule (thick line segment) in design-region coordinates (um).

    ``start``/``end`` are ``(x, y)`` tuples relative to the design-region
    origin; ``width_um`` is the full width of the path.
    """

    start: tuple[float, float]
    end: tuple[float, float]
    width_um: float

    def __post_init__(self):
        if self.width_um <= 0:
            raise ValueError("segment width must be positive")


def rasterize_segments(
    design_shape: tuple[int, int],
    dl: float,
    segments: list[PathSegment],
) -> np.ndarray:
    """Binary occupancy of a union of capsules on the design grid."""
    nx, ny = design_shape
    xs = (np.arange(nx) + 0.5) * dl
    ys = (np.arange(ny) + 0.5) * dl
    X, Y = np.meshgrid(xs, ys, indexing="ij")
    pattern = np.zeros(design_shape, dtype=np.float64)
    for seg in segments:
        ax, ay = seg.start
        bx, by = seg.end
        dx, dy = bx - ax, by - ay
        length2 = dx * dx + dy * dy
        if length2 == 0:
            t = np.zeros_like(X)
        else:
            t = np.clip(((X - ax) * dx + (Y - ay) * dy) / length2, 0.0, 1.0)
        px = ax + t * dx
        py = ay + t * dy
        dist = np.hypot(X - px, Y - py)
        pattern[dist <= seg.width_um / 2.0] = 1.0
    return pattern


def signed_distance(pattern: np.ndarray, dl: float) -> np.ndarray:
    """Signed distance field of a binary pattern (um, positive inside)."""
    pattern = np.asarray(pattern) > 0.5
    if pattern.all():
        return np.full(pattern.shape, dl * min(pattern.shape))
    if not pattern.any():
        return np.full(pattern.shape, -dl * min(pattern.shape))
    inside = ndimage.distance_transform_edt(pattern) * dl
    outside = ndimage.distance_transform_edt(~pattern) * dl
    return inside - outside


def theta_from_pattern(parameterization, pattern: np.ndarray, dl: float) -> np.ndarray:
    """Latent variables whose decoded pattern approximates ``pattern``.

    Works for both parameterizations:

    * level set: knot samples of the signed-distance field;
    * density: logits of the (slightly smoothed) occupancy.
    """
    pattern = np.asarray(pattern, dtype=np.float64)
    if hasattr(parameterization, "theta_from_levelset"):
        phi = signed_distance(pattern, dl)
        return parameterization.theta_from_levelset(phi)
    # Density: invert the sigmoid at a *moderate* margin (+-2.2 logits).
    # Saturated logits would flatten the sigmoid and stall optimization.
    occupancy = np.clip(pattern, 0.1, 0.9)
    return np.log(occupancy / (1.0 - occupancy))


def random_theta(
    parameterization,
    rng: np.random.Generator,
    scale: float = 1.0,
    smooth_cells: float = 0.0,
) -> np.ndarray:
    """Random initialization (the ablation baseline of Table II).

    ``smooth_cells > 0`` low-passes the noise so level-set islands are not
    single pixels — random but not pathological.
    """
    theta = rng.normal(0.0, scale, size=parameterization.knot_shape)
    if smooth_cells > 0:
        theta = ndimage.gaussian_filter(theta, smooth_cells)
    return theta
