"""Topology parameterizations mapping latent variables to patterns.

The paper's map ``P : theta -> rho`` comes in two flavours it benchmarks
against each other:

* :class:`LevelSetParameterization` (``LS``) — a coarse grid of level-set
  knot values, bilinearly interpolated and thresholded at zero (Wang et
  al. [21]); BOSON-1's default.
* :class:`DensityParameterization` (``Density``) — per-pixel densities with
  optional Gaussian filtering (the blur-based MFS control of prior art)
  and tanh projection.

:mod:`repro.params.initializers` provides the *light-concentrated
initialization* of Sec. III-D3: seeding the design with simple waveguide
paths that connect the ports so early gradients are informative.
"""

from repro.params.levelset import LevelSetParameterization
from repro.params.density import DensityParameterization
from repro.params.transforms import heaviside_ste, smooth_heaviside
from repro.params.initializers import (
    PathSegment,
    rasterize_segments,
    signed_distance,
    theta_from_pattern,
    random_theta,
)

__all__ = [
    "LevelSetParameterization",
    "DensityParameterization",
    "heaviside_ste",
    "smooth_heaviside",
    "PathSegment",
    "rasterize_segments",
    "signed_distance",
    "theta_from_pattern",
    "random_theta",
]
