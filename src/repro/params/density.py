"""Density topology parameterization (the ``Density`` baselines).

Per-pixel latent variables squashed by a sigmoid, optionally Gaussian-
filtered (the blur-based MFS-control heuristic of prior art, the ``-M``
suffix in the paper's tables), then sharpened by a tanh projection:

    x = sigmoid(theta);  x = blur(x)  [optional];  rho = project(x).

Without the filter this parameterization can place single-pixel features —
exactly the fabricability failure mode the paper's Table I demonstrates.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor
from repro.autodiff import functional as F
from repro.autodiff.ops import as_tensor
from repro.fab.etch import tanh_projection

__all__ = ["DensityParameterization"]


def _gaussian_kernel(shape: tuple[int, int], dl: float, radius_um: float) -> np.ndarray:
    nx, ny = shape
    x = np.fft.fftfreq(nx, d=1.0) * nx * dl
    y = np.fft.fftfreq(ny, d=1.0) * ny * dl
    X, Y = np.meshgrid(x, y, indexing="ij")
    kernel = np.exp(-(X**2 + Y**2) / (2 * radius_um**2))
    return kernel / kernel.sum()


class DensityParameterization:
    """Map per-pixel latents to a [0, 1] pattern.

    Parameters
    ----------
    design_shape:
        Pattern resolution ``(Nx, Ny)``.
    dl:
        Cell pitch in um (needed when filtering).
    blur_radius_um:
        Gaussian MFS-control filter radius; ``None`` disables filtering
        (the plain ``Density`` baseline).
    beta:
        Projection sharpness.
    """

    def __init__(
        self,
        design_shape: tuple[int, int],
        dl: float = 0.05,
        blur_radius_um: float | None = None,
        beta: float = 8.0,
    ):
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        if blur_radius_um is not None and blur_radius_um <= 0:
            raise ValueError("blur radius must be positive (or None)")
        self.design_shape = tuple(design_shape)
        self.dl = float(dl)
        self.blur_radius_um = blur_radius_um
        self.beta = float(beta)
        self.name = "density-m" if blur_radius_um else "density"
        self._kernel = (
            _gaussian_kernel(self.design_shape, self.dl, blur_radius_um)
            if blur_radius_um
            else None
        )

    # ------------------------------------------------------------------ #
    @property
    def knot_shape(self) -> tuple[int, int]:
        """Latent shape (full design resolution for density methods)."""
        return self.design_shape

    @property
    def n_parameters(self) -> int:
        return self.design_shape[0] * self.design_shape[1]

    def pattern(self, theta) -> Tensor:
        """Differentiable pattern ``rho(theta)`` in [0, 1]."""
        theta = as_tensor(theta)
        if tuple(theta.shape) != self.design_shape:
            raise ValueError(
                f"theta shape {theta.shape} != design {self.design_shape}"
            )
        x = F.sigmoid(theta)
        if self._kernel is not None:
            x = F.conv2d_fft(x, self._kernel)
        return tanh_projection(x, 0.5, beta=self.beta)

    def pattern_array(self, theta: np.ndarray) -> np.ndarray:
        """Hard binary pattern for evaluation (no autodiff)."""
        theta = np.asarray(theta, dtype=np.float64)
        x = 1.0 / (1.0 + np.exp(-theta))
        if self._kernel is not None:
            x = np.real(
                np.fft.ifft2(np.fft.fft2(x) * np.fft.fft2(self._kernel))
            )
        return (x > 0.5).astype(np.float64)
