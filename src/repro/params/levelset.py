"""Level-set topology parameterization (paper ref. [21]).

The design variables ``theta`` are level-set values on a coarse knot grid.
The pattern is obtained by bilinear interpolation onto the design grid
followed by a (smoothed or straight-through) Heaviside at zero:

    phi = upsample(theta);   rho = H(phi).

The knot grid is the mechanism that keeps the *ideal* pattern reasonably
smooth even before the lithography model is applied, and it is the
high-dimensional space in which the conditional-subspace tunnel of
Eq. (3) operates.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor
from repro.autodiff import functional as F
from repro.autodiff.ops import as_tensor
from repro.params.transforms import heaviside_ste, smooth_heaviside

__all__ = ["LevelSetParameterization"]


class LevelSetParameterization:
    """Map knot-grid level-set values to a [0, 1] pattern.

    Parameters
    ----------
    design_shape:
        Pattern resolution ``(Nx, Ny)`` in cells.
    knots_per_axis:
        Knot-grid resolution as a fraction of the design resolution;
        ``(nkx, nky)`` explicit shape.  Defaults to one knot per 2x2
        cells.
    beta:
        Heaviside sharpness (in level-set units).
    hard:
        True (default): binary forward pattern with straight-through
        gradients.  False: smooth tanh Heaviside.
    """

    name = "levelset"

    def __init__(
        self,
        design_shape: tuple[int, int],
        knot_shape: tuple[int, int] | None = None,
        beta: float = 2.0,
        hard: bool = True,
    ):
        nx, ny = design_shape
        if knot_shape is None:
            knot_shape = (max(2, nx // 2), max(2, ny // 2))
        kx, ky = knot_shape
        if kx < 2 or ky < 2:
            raise ValueError(f"knot grid must be at least 2x2, got {knot_shape}")
        if kx > nx or ky > ny:
            raise ValueError(
                f"knot grid {knot_shape} exceeds design grid {design_shape}"
            )
        self.design_shape = (nx, ny)
        self.knot_shape = (kx, ky)
        self.beta = float(beta)
        self.hard = bool(hard)

    # ------------------------------------------------------------------ #
    @property
    def n_parameters(self) -> int:
        return self.knot_shape[0] * self.knot_shape[1]

    def pattern(self, theta) -> Tensor:
        """Differentiable pattern ``rho(theta)`` in [0, 1]."""
        theta = as_tensor(theta)
        if tuple(theta.shape) != self.knot_shape:
            raise ValueError(
                f"theta shape {theta.shape} != knot grid {self.knot_shape}"
            )
        phi = F.upsample_bilinear(theta, self.design_shape)
        if self.hard:
            return heaviside_ste(phi, self.beta)
        return smooth_heaviside(phi, self.beta)

    def pattern_array(self, theta: np.ndarray) -> np.ndarray:
        """Hard binary pattern for evaluation (no autodiff)."""
        theta = np.asarray(theta, dtype=np.float64)
        if theta.shape != self.knot_shape:
            raise ValueError(
                f"theta shape {theta.shape} != knot grid {self.knot_shape}"
            )
        phi = F.upsample_bilinear(Tensor(theta), self.design_shape).data
        return (phi > 0).astype(np.float64)

    def theta_from_levelset(self, phi_design: np.ndarray) -> np.ndarray:
        """Sample a design-resolution level-set field at the knots.

        Used by initializers: given a signed-distance field on the design
        grid, produce the knot values whose interpolation approximates it.
        """
        phi_design = np.asarray(phi_design, dtype=np.float64)
        if phi_design.shape != self.design_shape:
            raise ValueError(
                f"phi shape {phi_design.shape} != design {self.design_shape}"
            )
        nx, ny = self.design_shape
        kx, ky = self.knot_shape
        xs = np.linspace(0, nx - 1, kx).round().astype(int)
        ys = np.linspace(0, ny - 1, ky).round().astype(int)
        return phi_design[np.ix_(xs, ys)].copy()
