#!/usr/bin/env python
"""Variation-robust optical isolator — the paper's flagship benchmark.

Runs the full BOSON-1 recipe on the TM1->TM3 mode-converting isolator:
light-concentrated initialization, dense objectives, conditional subspace
relaxation, and adaptive (axial + worst-case) variation sampling, then
reports the isolation contrast before/after fabrication.

Usage:
    python examples/isolator_robust.py [--iterations N] [--sampling S]

Expected runtime: a few minutes with default settings.
"""

import argparse

from repro.core import Boson1Optimizer, OptimizerConfig
from repro.devices import make_device
from repro.eval import evaluate_ideal, evaluate_post_fab
from repro.utils.render import ascii_pattern


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=40)
    parser.add_argument("--sampling", default="axial+worst")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mc-samples", type=int, default=10)
    args = parser.parse_args()

    device = make_device("isolator")
    print("=== Optical isolator: TM1 -> TM3 with backward rejection ===\n")
    print(
        f"window {device.grid.extent_um} um, input guide "
        f"{device.in_width_um} um, output guide {device.out_width_um} um"
    )

    config = OptimizerConfig(
        iterations=args.iterations,
        sampling=args.sampling,
        relax_epochs=max(5, args.iterations // 3),
        seed=args.seed,
    )
    optimizer = Boson1Optimizer(device, config)

    def log(record):
        if record.iteration % 5 == 0 or record.iteration == args.iterations - 1:
            fwd = record.powers["fwd"]
            bwd = record.powers["bwd"]
            print(
                f"  iter {record.iteration:3d}  contrast {record.fom:9.4f}  "
                f"T_fwd(TM3) {fwd['trans3']:.3f}  "
                f"T_bwd {bwd['bwd']:.4f}  p {record.p:.2f}"
            )

    print(f"\nOptimizing ({args.iterations} iterations, "
          f"{args.sampling} sampling)...")
    result = optimizer.run(callback=log)

    print("\nFinal design pattern:")
    print(ascii_pattern(result.pattern, max_width=64))

    pre_fom, pre_powers = evaluate_ideal(device, result.pattern)
    report = evaluate_post_fab(
        device,
        optimizer.process,
        result.pattern,
        n_samples=args.mc_samples,
        seed=1234,
    )
    e_fwd, e_bwd = device.transmissions(report.mean_powers)
    print(f"\nIdeal contrast (pre-fab)    : {pre_fom:.4g}")
    print(
        f"Post-fab contrast (MC mean) : {report.mean_fom:.4g} "
        f"(fwd {e_fwd:.3f}, bwd {e_bwd:.4f})"
    )
    print("Lower contrast = better isolation.")


if __name__ == "__main__":
    main()
