#!/usr/bin/env python
"""Quickstart: inverse-design a 90-degree waveguide bend with BOSON-1.

Runs the full variation-aware subspace optimization on the smallest
benchmark device, prints the optimization trace, the final design as
ASCII art, and a Monte-Carlo post-fabrication robustness report.

Usage:
    python examples/quickstart.py [--iterations N] [--seed S]

Expected runtime: ~1 minute with default settings.
"""

import argparse

from repro.core import Boson1Optimizer, OptimizerConfig
from repro.devices import make_device
from repro.eval import evaluate_ideal, evaluate_post_fab
from repro.utils.render import ascii_pattern


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sampling",
        default="axial",
        help="variation sampling strategy (axial, axial+worst, nominal...)",
    )
    args = parser.parse_args()

    print("=== BOSON-1 quickstart: 90-degree waveguide bend ===\n")
    device = make_device("bending")
    print(
        f"Device grid {device.grid.shape} cells at {device.dl * 1000:.0f} nm, "
        f"design region {device.design_shape}"
    )

    config = OptimizerConfig(
        iterations=args.iterations,
        sampling=args.sampling,
        relax_epochs=max(2, args.iterations // 3),
        seed=args.seed,
    )
    optimizer = Boson1Optimizer(device, config)

    def log(record):
        print(
            f"  iter {record.iteration:3d}  loss {record.loss:+.4f}  "
            f"p {record.p:.2f}  T {record.powers['fwd']['out']:.3f}  "
            f"R {record.powers['fwd']['refl']:.3f}"
        )

    print(f"\nOptimizing ({args.iterations} iterations, "
          f"{args.sampling} sampling)...")
    result = optimizer.run(callback=log)

    print("\nFinal design pattern (design region):")
    print(ascii_pattern(result.pattern, max_width=48))

    pre_fom, _ = evaluate_ideal(device, result.pattern)
    report = evaluate_post_fab(
        device, optimizer.process, result.pattern, n_samples=10, seed=1234
    )
    print(f"\nIdeal (pre-fab) transmission : {pre_fom:.3f}")
    print(
        f"Post-fab transmission        : {report.mean_fom:.3f} "
        f"+- {report.std_fom:.3f}  ({report.n_samples} Monte-Carlo samples)"
    )


if __name__ == "__main__":
    main()
