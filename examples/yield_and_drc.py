#!/usr/bin/env python
"""Yield estimation and design-rule checking of finished designs.

The downstream consumers of variation-aware optimization: what fraction
of fabricated dies meets spec (yield), and does the pattern satisfy
foundry minimum-dimension rules (DRC)?  Compares a free-space-optimized
design against a BOSON-1 design on both axes.

Usage:
    python examples/yield_and_drc.py [--iterations N] [--samples M]
"""

import argparse

from repro.baselines import run_baseline
from repro.devices import make_device
from repro.eval import format_table, yield_curve
from repro.fab.process import FabricationProcess
from repro.utils.drc import DesignRules, run_drc


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=20)
    parser.add_argument("--samples", type=int, default=12)
    args = parser.parse_args()

    device = make_device("bending")
    process = FabricationProcess(
        device.design_shape,
        device.dl,
        context=device.litho_context(12),
        pad=12,
    )
    rules = DesignRules(min_solid_um=0.1, min_gap_um=0.1)
    specs = [0.5, 0.7, 0.8, 0.9]

    rows = []
    for method in ("Density", "BOSON-1"):
        result = run_baseline(
            method, device, process, iterations=args.iterations, seed=0
        )
        drc = run_drc(result.mask, device.dl, rules)
        curve = yield_curve(
            device,
            process,
            result.mask,
            specs=specs,
            n_samples=args.samples,
            seed=99,
        )
        rows.append(
            [method, "clean" if drc.clean else "VIOLATIONS"]
            + [f"{r.yield_fraction:.0%}" for r in curve]
        )
        print(f"{method}: {drc.summary()}")

    print()
    print(
        format_table(
            ["method", "DRC"] + [f"yield @ T>={s}" for s in specs],
            rows,
            title=f"Yield vs transmission spec "
            f"({args.samples} Monte-Carlo dies)",
        )
    )


if __name__ == "__main__":
    main()
