#!/usr/bin/env python
"""Waveguide-crossing design with dense objectives and crosstalk control.

Shows the Eq. (2) auxiliary-objective machinery: the crossing is optimized
for transmission while reflection and both crosstalk arms are penalized.
Compares the dense objective against the conventional sparse single
objective — the loss-landscape-reshaping story of paper Sec. III-D1.

Usage:
    python examples/crossing_design.py [--iterations N]
"""

import argparse

from repro.core import Boson1Optimizer, OptimizerConfig
from repro.devices import make_device
from repro.eval import evaluate_post_fab
from repro.utils.render import ascii_pattern


def run(device, dense: bool, iterations: int):
    config = OptimizerConfig(
        iterations=iterations,
        sampling="axial",
        relax_epochs=max(2, iterations // 3),
        dense_objectives=dense,
        seed=0,
    )
    optimizer = Boson1Optimizer(device, config)
    result = optimizer.run()
    return optimizer, result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=20)
    args = parser.parse_args()

    device = make_device("crossing")
    print("=== Waveguide crossing: dense vs sparse objectives ===\n")

    for dense in (True, False):
        label = "dense (Eq. 2 penalties)" if dense else "sparse (T only)"
        optimizer, result = run(device, dense, args.iterations)
        final = result.history[-1]
        powers = final.powers["fwd"]
        print(f"[{label}]")
        print(
            f"  T = {powers['out']:.3f}   R = {powers['refl']:.3f}   "
            f"xtalk N/S = {powers['xtalk_n']:.4f}/{powers['xtalk_s']:.4f}"
        )
        if dense:
            report = evaluate_post_fab(
                device, optimizer.process, result.pattern,
                n_samples=8, seed=1234,
            )
            print(
                f"  post-fab T = {report.mean_fom:.3f} "
                f"+- {report.std_fom:.3f}"
            )
            print("\n  final design:")
            print(
                "  "
                + ascii_pattern(result.pattern, max_width=40).replace(
                    "\n", "\n  "
                )
            )
        print()


if __name__ == "__main__":
    main()
