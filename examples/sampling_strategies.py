#!/usr/bin/env python
"""Comparing variation-sampling strategies (paper Fig. 6a, in miniature).

Optimizes the same bend under different sampling strategies and evaluates
each result with the same Monte-Carlo draw, illustrating the paper's
cost/robustness trade-off: exhaustive corner sweeping costs 27
simulations per iteration, the adaptive axial+worst scheme costs 8.

Usage:
    python examples/sampling_strategies.py [--iterations N]
"""

import argparse

from repro.core import Boson1Optimizer, OptimizerConfig, make_sampling_strategy
from repro.devices import make_device
from repro.eval import evaluate_post_fab, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=12)
    parser.add_argument(
        "--strategies",
        nargs="+",
        default=["nominal", "single-sided", "axial", "axial+worst"],
    )
    args = parser.parse_args()

    device = make_device("bending")
    rows = []
    process = None
    for name in args.strategies:
        config = OptimizerConfig(
            iterations=args.iterations,
            sampling=name,
            relax_epochs=max(2, args.iterations // 3),
            seed=0,
        )
        optimizer = Boson1Optimizer(device, config)
        process = optimizer.process
        result = optimizer.run()
        report = evaluate_post_fab(
            device, process, result.pattern, n_samples=8, seed=777
        )
        cost = make_sampling_strategy(name).simulations_per_iteration()
        if name == "axial+worst":
            cost += 1  # the ascent probe
        rows.append(
            [
                name,
                cost,
                f"{report.mean_fom:.3f}",
                f"{report.std_fom:.3f}",
            ]
        )
        print(f"finished {name}")

    print()
    print(
        format_table(
            ["strategy", "corners/iter", "post-fab T (mean)", "std"],
            rows,
            title=f"Sampling strategies on the bend "
            f"({args.iterations} iterations each)",
        )
    )


if __name__ == "__main__":
    main()
