#!/usr/bin/env python
"""The pre-fab vs post-fab gap (paper Fig. 1 / Fig. 2 motivation).

Demonstrates why naive inverse design fails in practice:

1. a fine-featured pattern is pushed through the lithography model —
   sub-resolution features vanish (Fig. 2a);
2. a free-space-optimized (``Density``) bend collapses after fabrication,
   while the fabrication-aware BOSON-1 design survives;
3. etch / dose corners visibly change the printed geometry (Fig. 2b).

Usage:
    python examples/fabrication_gap.py [--iterations N]
"""

import argparse

import numpy as np

from repro.baselines import run_baseline
from repro.devices import make_device
from repro.eval import evaluate_ideal, evaluate_post_fab
from repro.fab import FabricationProcess, VariationCorner
from repro.utils.mfs import minimum_feature_size
from repro.utils.render import ascii_pattern


def demo_feature_loss(process: FabricationProcess) -> None:
    print("--- 1. Lithography wipes sub-resolution features ---")
    shape = process.design_shape
    pattern = np.zeros(shape)
    pattern[4:12, 4:28] = 1.0          # a printable bar (0.4 um wide)
    pattern[18, 6] = 1.0               # an isolated 50-nm dot
    pattern[22:24, 10:26] = 1.0        # a 100-nm line
    pattern[28:30, 4:28:2] = 1.0       # sub-resolution comb

    printed = process.apply_array(pattern, VariationCorner("nominal"))
    print("Design (mask):")
    print(ascii_pattern(pattern, max_width=40))
    print("\nPrinted (after litho + etch):")
    print(ascii_pattern(printed, max_width=40))
    print(
        f"\nresolution limit ~{process.min_printable_period_um() * 1000:.0f} nm;"
        f" kept {printed.sum() / max(pattern.sum(), 1):.0%} of drawn pixels\n"
    )


def demo_corner_spread(process: FabricationProcess) -> None:
    print("--- 2. Fabrication corners distort the printed pattern ---")
    shape = process.design_shape
    # A line near the resolution limit: exactly the kind of feature
    # inverse-designed devices rely on, and the most corner-sensitive.
    pattern = np.zeros(shape)
    pattern[:, 14:19] = 1.0  # 0.25 um line
    areas = {}
    for litho in ("min", "nominal", "max"):
        printed = process.apply_array(
            pattern, VariationCorner(litho, litho=litho)
        )
        areas[litho] = printed.sum()
    print(
        "printed area of a 250-nm line by litho corner: "
        + ", ".join(f"{k}={int(v)} px" for k, v in areas.items())
    )
    print("(under-dose shrinks features, over-dose bloats them)\n")


def demo_device_gap(iterations: int) -> None:
    print("--- 3. Free optimization vs subspace optimization ---")
    device = make_device("bending")
    process = FabricationProcess(
        device.design_shape,
        device.dl,
        context=device.litho_context(12),
        pad=12,
    )
    for method in ("Density", "BOSON-1"):
        result = run_baseline(
            method, device, process, iterations=iterations, seed=0
        )
        pre, _ = evaluate_ideal(device, result.design_pattern)
        post = evaluate_post_fab(
            device, process, result.mask, n_samples=8, seed=7
        )
        mfs = minimum_feature_size(result.mask, device.dl)
        print(
            f"{method:10s} pre-fab T = {pre:.3f}  ->  post-fab T = "
            f"{post.mean_fom:.3f} +- {post.std_fom:.3f}   "
            f"(min feature {mfs * 1000:.0f} nm)"
        )
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=20)
    args = parser.parse_args()

    process = FabricationProcess((32, 32), 0.05, pad=12)
    demo_feature_loss(process)
    demo_corner_spread(process)
    demo_device_gap(args.iterations)


if __name__ == "__main__":
    main()
